package mem

import (
	"reflect"
	"testing"
)

// TestMemoryFieldsClassifiedForSnapshot is the snapshot-completeness
// gate for the memory system: every field of Memory and page must be
// explicitly serialized or recorded as host wiring, so new state
// cannot silently bypass ExportPages and desynchronize a restored run.
func TestMemoryFieldsClassifiedForSnapshot(t *testing.T) {
	serialized := map[string]bool{
		"pages": true, // ExportPages/ImportPages
		"Stats": true, // carried separately; the snapshot layer calls SetStats
	}
	hostWiring := map[string]bool{
		"WXExclusive": true, // policy chosen at construction, not state
		"Tracer":      true, // observability hook
		"Inject":      true, // fault-injection wiring
	}
	typ := reflect.TypeOf(Memory{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if serialized[name] || hostWiring[name] {
			continue
		}
		t.Errorf("Memory.%s is not classified for snapshots: extend ExportPages/ImportPages "+
			"(and the wire format in internal/snapshot) or record it as host wiring here", name)
	}

	pageSerialized := map[string]bool{"data": true, "prot": true, "version": true}
	ptyp := reflect.TypeOf(page{})
	for i := 0; i < ptyp.NumField(); i++ {
		name := ptyp.Field(i).Name
		if !pageSerialized[name] {
			t.Errorf("page.%s is not serialized: extend PageState and the snapshot wire format", name)
		}
	}
}

func TestExportImportPagesRoundTrip(t *testing.T) {
	m := New()
	if err := m.Map(0x1000, 2*PageSize, RW); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(0x1234, []byte("snapshot me")); err != nil {
		t.Fatal(err)
	}
	if err := m.Map(0x40_0000, PageSize, RW); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(0x40_0000, []byte{0xCC}); err != nil {
		t.Fatal(err)
	}
	if err := m.Protect(0x40_0000, PageSize, RX); err != nil {
		t.Fatal(err)
	}

	pages := m.ExportPages()
	fresh := New()
	// Pre-map something that must vanish: import replaces wholesale.
	if err := fresh.Map(0x9000_0000, PageSize, RW); err != nil {
		t.Fatal(err)
	}
	if err := fresh.ImportPages(pages); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pages, fresh.ExportPages()) {
		t.Fatal("re-export diverged from imported pages")
	}
	if err := fresh.Read(0x9000_0000, make([]byte, 1)); err == nil {
		t.Fatal("pre-import mapping survived a wholesale import")
	}
	got := make([]byte, 11)
	if err := fresh.Read(0x1234, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "snapshot me" {
		t.Fatalf("restored data = %q", got)
	}
	if p, ok := fresh.ProtOf(0x40_0000); !ok || p != RX {
		t.Fatalf("restored prot = %v, want RX", p)
	}
	wantVer, _ := m.PageVersion(0x1000)
	gotVer, _ := fresh.PageVersion(0x1000)
	if gotVer != wantVer {
		t.Fatal("page version not restored")
	}
}

func TestImportPagesRejectsMalformed(t *testing.T) {
	m := New()
	short := []PageState{{PN: 1, Prot: RW, Data: make([]byte, PageSize-1)}}
	if err := m.ImportPages(short); err == nil {
		t.Error("imported a short page")
	}
	dup := []PageState{
		{PN: 1, Prot: RW, Data: make([]byte, PageSize)},
		{PN: 1, Prot: RW, Data: make([]byte, PageSize)},
	}
	if err := m.ImportPages(dup); err == nil {
		t.Error("imported duplicate pages")
	}
	wx := New()
	wx.WXExclusive = true
	bad := []PageState{{PN: 1, Prot: RW | Exec, Data: make([]byte, PageSize)}}
	if err := wx.ImportPages(bad); err == nil {
		t.Error("import bypassed the W^X policy")
	}
}
