package mem

import (
	"errors"
	"testing"
)

// protTestMem maps pages 1..3 (0x1000-0x3fff) RW, leaving page 4
// unmapped, so ranges can straddle the mapping's edge.
func protTestMem(t *testing.T) *Memory {
	t.Helper()
	m := New()
	if err := m.Map(0x1000, 3*PageSize, RW); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestProtectZeroLength(t *testing.T) {
	m := protTestMem(t)
	if err := m.Protect(0x1000, 0, Read); err == nil {
		t.Fatal("zero-length Protect succeeded")
	}
	if got, _ := m.ProtOf(0x1000); got != RW {
		t.Fatalf("zero-length Protect changed protection to %v", got)
	}
}

func TestUnmapZeroLength(t *testing.T) {
	m := protTestMem(t)
	if err := m.Unmap(0x1000, 0); err == nil {
		t.Fatal("zero-length Unmap succeeded")
	}
	if _, ok := m.ProtOf(0x1000); !ok {
		t.Fatal("zero-length Unmap removed a page")
	}
}

// TestProtectPartiallyMappedIsAtomic runs Protect across the mapping's
// edge: the call must fail with a typed *Fault naming the first
// unmapped page, and no page in the valid prefix may have changed.
func TestProtectPartiallyMappedIsAtomic(t *testing.T) {
	m := protTestMem(t)
	err := m.Protect(0x2000, 3*PageSize, Read) // pages 2,3 mapped; 4 not
	if err == nil {
		t.Fatal("Protect across the mapping edge succeeded")
	}
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("error is %T (%v), want wrapped *Fault", err, err)
	}
	if f.Addr != 4*PageSize {
		t.Fatalf("fault addr = %#x, want %#x", f.Addr, 4*PageSize)
	}
	for _, addr := range []uint64{0x1000, 0x2000, 0x3000} {
		if got, _ := m.ProtOf(addr); got != RW {
			t.Fatalf("page %#x prot = %v after failed Protect, want RW (no partial mutation)", addr, got)
		}
	}
}

// TestUnmapPartiallyMappedIsAtomic mirrors the Protect case: a hole in
// the range must fail the whole call with a typed *Fault and remove
// nothing.
func TestUnmapPartiallyMappedIsAtomic(t *testing.T) {
	m := protTestMem(t)
	err := m.Unmap(0x2000, 3*PageSize)
	if err == nil {
		t.Fatal("Unmap across the mapping edge succeeded")
	}
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("error is %T (%v), want wrapped *Fault", err, err)
	}
	if f.Addr != 4*PageSize {
		t.Fatalf("fault addr = %#x, want %#x", f.Addr, 4*PageSize)
	}
	for _, addr := range []uint64{0x1000, 0x2000, 0x3000} {
		if _, ok := m.ProtOf(addr); !ok {
			t.Fatalf("page %#x unmapped by the failed Unmap", addr)
		}
	}
}

// TestProtectWXExclusiveMidRange asks for WX under the strict policy:
// the request must be rejected up front and the whole range left
// untouched, even though every page is mapped and the flip would
// otherwise be valid page by page.
func TestProtectWXExclusiveMidRange(t *testing.T) {
	m := New()
	m.WXExclusive = true
	if err := m.Map(0x1000, 3*PageSize, RW); err != nil {
		t.Fatal(err)
	}
	if err := m.Protect(0x1000, 3*PageSize, RW|Exec); err == nil {
		t.Fatal("W^X-violating Protect succeeded under WXExclusive")
	}
	for _, addr := range []uint64{0x1000, 0x2000, 0x3000} {
		if got, _ := m.ProtOf(addr); got != RW {
			t.Fatalf("page %#x prot = %v after rejected W^X flip, want RW", addr, got)
		}
	}
	// A compliant flip of the same range still works.
	if err := m.Protect(0x1000, 3*PageSize, RX); err != nil {
		t.Fatalf("compliant Protect failed: %v", err)
	}
	if got, _ := m.ProtOf(0x2000); got != RX {
		t.Fatalf("prot = %v, want RX", got)
	}
}

// TestProtectUnalignedPartialRangeIsAtomic starts mid-page and runs
// into unmapped space: widening must not leak a partial change either.
func TestProtectUnalignedPartialRangeIsAtomic(t *testing.T) {
	m := protTestMem(t)
	err := m.Protect(0x3800, PageSize, Read) // widens into unmapped page 4
	if err == nil {
		t.Fatal("Protect into unmapped space succeeded")
	}
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("error is %T (%v), want wrapped *Fault", err, err)
	}
	if got, _ := m.ProtOf(0x3000); got != RW {
		t.Fatalf("page 3 prot = %v after failed widened Protect, want RW", got)
	}
}
