package faultinject

import (
	"fmt"
	"sort"
)

// PlanState is the serializable progress of a Plan: which points have
// fired and how far each deterministic operation counter has advanced.
// The points themselves are not part of the state — they re-derive
// from the (seed, Opts) pair — so a snapshot-based chaos replay
// rebuilds the plan with New and installs the counters with Import,
// landing on exactly the faults the original run had left.
type PlanState struct {
	Fired    []bool    `json:"fired"`
	Ops      []OpCount `json:"ops,omitempty"`
	PokeOpen bool      `json:"poke_open,omitempty"`
}

// OpCount is one operation counter: how many operations of Kind on
// CPU (-1 for machine-wide kinds) the plan has observed.
type OpCount struct {
	Kind  Kind   `json:"kind"`
	CPU   int    `json:"cpu"`
	Count uint64 `json:"count"`
}

// Export captures the plan's progress in a deterministic order (the
// counter list is sorted by kind then CPU, so equal states encode
// equal).
func (p *Plan) Export() PlanState {
	st := PlanState{
		Fired:    append([]bool(nil), p.fired...),
		PokeOpen: p.pokeOpen,
	}
	for k, n := range p.ops {
		st.Ops = append(st.Ops, OpCount{Kind: k.kind, CPU: k.cpu, Count: n})
	}
	sort.Slice(st.Ops, func(i, j int) bool {
		if st.Ops[i].Kind != st.Ops[j].Kind {
			return st.Ops[i].Kind < st.Ops[j].Kind
		}
		return st.Ops[i].CPU < st.Ops[j].CPU
	})
	return st
}

// Import installs a previously exported progress state. The plan must
// have the same number of points as the one the state came from —
// i.e. be rebuilt from the same (seed, Opts).
func (p *Plan) Import(st PlanState) error {
	if len(st.Fired) != len(p.points) {
		return fmt.Errorf("faultinject: state has %d fired flags, plan has %d points (different seed or options?)",
			len(st.Fired), len(p.points))
	}
	copy(p.fired, st.Fired)
	p.ops = make(map[opKey]uint64, len(st.Ops))
	for _, oc := range st.Ops {
		p.ops[opKey{oc.Kind, oc.CPU}] = oc.Count
	}
	p.pokeOpen = st.PokeOpen
	return nil
}
