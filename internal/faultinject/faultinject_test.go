package faultinject

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/mem"
)

func TestSeededPlanIsDeterministic(t *testing.T) {
	a := New(42, Opts{Points: 8, CPUs: 3})
	b := New(42, Opts{Points: 8, CPUs: 3})
	if !reflect.DeepEqual(a.Points(), b.Points()) {
		t.Fatalf("same seed produced different plans:\n%v\n%v", a.Points(), b.Points())
	}
	c := New(43, Opts{Points: 8, CPUs: 3})
	if reflect.DeepEqual(a.Points(), c.Points()) {
		t.Fatalf("different seeds produced identical plans: %v", a.Points())
	}
}

func TestProtectFaultFiresOnNthOpExactlyOnce(t *testing.T) {
	p := Exact(Point{Kind: KindProtect, Op: 2, Transient: true})
	for i := 0; i < 6; i++ {
		err := p.ProtectFault(0x1000, 0x1000, mem.RW)
		if (err != nil) != (i == 2) {
			t.Fatalf("op %d: err = %v", i, err)
		}
		if i == 2 {
			var f *Fault
			if !errors.As(err, &f) {
				t.Fatalf("op 2 error is %T, want *Fault", err)
			}
			if !f.FaultTransient() {
				t.Fatalf("transient point produced non-transient fault")
			}
		}
	}
	if p.Stats.Protect != 1 {
		t.Fatalf("Protect fired %d times, want 1", p.Stats.Protect)
	}
	if p.Remaining() != 0 {
		t.Fatalf("Remaining() = %d, want 0", p.Remaining())
	}
}

func TestWriteTearScopedToText(t *testing.T) {
	p := Exact(Point{Kind: KindWriteTear, Op: 0, Tear: 2})
	p.text = []textRange{{0x400000, 0x401000}}

	// Writes outside the text ranges neither fault nor consume ops.
	if tear, err := p.WriteTear(0x601000, 5); err != nil || tear != 0 {
		t.Fatalf("data write: tear=%d err=%v, want clean pass", tear, err)
	}
	tear, err := p.WriteTear(0x400100, 5)
	if err == nil {
		t.Fatalf("text write did not fault")
	}
	if tear != 2 {
		t.Fatalf("tear = %d, want 2", tear)
	}
	// A tear can never land the full write.
	p2 := Exact(Point{Kind: KindWriteTear, Op: 0, Tear: 9})
	p2.text = []textRange{{0x400000, 0x401000}}
	tear, err = p2.WriteTear(0x400100, 5)
	if err == nil || tear >= 5 {
		t.Fatalf("tear = %d err = %v, want partial tear with error", tear, err)
	}
}

func TestDropFlushPerCPU(t *testing.T) {
	p := Exact(Point{Kind: KindDropFlush, Op: 1, CPU: 1})
	// CPU 0's flushes are never dropped.
	for i := 0; i < 4; i++ {
		if p.DropFlush(0, 0x400000, 16) {
			t.Fatalf("cpu 0 flush %d dropped", i)
		}
	}
	// CPU 1 drops exactly its second flush.
	if p.DropFlush(1, 0x400000, 16) {
		t.Fatalf("cpu 1 flush 0 dropped, point is armed for op 1")
	}
	if !p.DropFlush(1, 0x400000, 16) {
		t.Fatalf("cpu 1 flush 1 not dropped")
	}
	if p.DropFlush(1, 0x400000, 16) {
		t.Fatalf("cpu 1 flush 2 dropped, point already fired")
	}
}

func TestFetchFaultFiresAtCycleThreshold(t *testing.T) {
	p := Exact(Point{Kind: KindFetchFault, CPU: 0, Cycle: 100, Transient: true})
	if err := p.FetchFault(0, 0x400000, 99); err != nil {
		t.Fatalf("fetch before threshold faulted: %v", err)
	}
	if err := p.FetchFault(1, 0x400000, 200); err != nil {
		t.Fatalf("fetch on wrong cpu faulted: %v", err)
	}
	err := p.FetchFault(0, 0x400010, 150)
	if err == nil {
		t.Fatalf("fetch at cycle 150 did not fault")
	}
	// The architectural fault metadata must survive errors.As through
	// the injector's wrapper.
	var mf *mem.Fault
	if !errors.As(err, &mf) {
		t.Fatalf("fetch fault does not unwrap to *mem.Fault: %v", err)
	}
	if mf.Addr != 0x400010 || mf.Kind != mem.AccessExec {
		t.Fatalf("unwrapped fault = %+v, want exec fault at 0x400010", mf)
	}
	// Spurious fault: the retry succeeds.
	if err := p.FetchFault(0, 0x400010, 151); err != nil {
		t.Fatalf("retried fetch faulted again: %v", err)
	}
}

func TestPokeOptsDoNotPerturbLegacySeeds(t *testing.T) {
	// The Poke knob must not change what a legacy seed generates: a
	// fixed CI seed's fault plan stays byte-for-byte stable.
	legacy := New(7, Opts{Points: 8, CPUs: 2})
	again := New(7, Opts{Points: 8, CPUs: 2})
	if !reflect.DeepEqual(legacy.Points(), again.Points()) {
		t.Fatal("legacy plan generation is not stable")
	}
	for _, pt := range legacy.Points() {
		if pt.Kind == KindPokeStep || pt.Window {
			t.Fatalf("legacy plan contains poke-era point %+v", pt)
		}
	}
	poke := New(7, Opts{Points: 64, CPUs: 2, Poke: true})
	found := false
	for _, pt := range poke.Points() {
		if pt.Kind == KindPokeStep {
			found = true
		}
	}
	if !found {
		t.Fatal("Poke plan with 64 points generated no poke-step point")
	}
}

func TestWindowDropFlushOnlyFiresInsidePokeWindow(t *testing.T) {
	p := Exact(Point{Kind: KindDropFlush, CPU: 0, Op: 0, Window: true, Transient: true})
	// Outside any poke window the point must not match — but the
	// operation count advances, so rebuild a fresh plan per scenario.
	if p.DropFlush(0, 0x400000, 5) {
		t.Fatal("window-scoped drop-flush fired outside a poke window")
	}

	p = Exact(Point{Kind: KindDropFlush, CPU: 0, Op: 0, Window: true, Transient: true})
	p.PokePhase(1, 0x400000, 5) // BRK planted: window open
	if !p.DropFlush(0, 0x400000, 5) {
		t.Fatal("window-scoped drop-flush did not fire inside the window")
	}
	p.PokePhase(3, 0x400000, 5) // first byte restored: window closed
	if p.pokeOpen {
		t.Fatal("poke window still open after phase 3")
	}
}

func TestPokeStepPointInvokesCallback(t *testing.T) {
	p := Exact(Point{Kind: KindPokeStep, Op: 1, Transient: true})
	var got []int
	p.OnPokeStep = func(phase int, addr, n uint64) { got = append(got, phase) }
	p.PokePhase(1, 0x400000, 6) // op 0: no match
	p.PokePhase(2, 0x400000, 6) // op 1: fires
	p.PokePhase(3, 0x400000, 6) // disarmed
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("OnPokeStep phases = %v, want [2]", got)
	}
	if p.Stats.PokeSteps != 1 {
		t.Fatalf("PokeSteps = %d, want 1", p.Stats.PokeSteps)
	}
	if p.Stats.Total() != 1 {
		t.Fatalf("Total = %d, want 1", p.Stats.Total())
	}
}
