// Package faultinject provides a seeded, deterministic fault injector
// for the simulated multiverse stack.
//
// The paper's runtime library rewrites a live text segment (§3.5:
// protection flips, icache shootdowns, interrupt-window hazards), and
// every one of those steps can fail on a real machine: mprotect
// returns EPERM, an interrupt lands mid-write and leaves a torn rel32,
// a shootdown IPI is lost, a spurious fault hits an instruction fetch.
// None of the simulated layers could provoke such failures, so the
// crash-consistency machinery in core had nothing to push against.
// This package closes that gap in the same spirit as WASM-MUTATE's
// adversarial binary perturbation: a Plan is a finite set of fault
// points, keyed by deterministic operation counts (per kind, per
// hardware thread) or simulated cycles, that the mem and cpu hot paths
// consult through nil-checkable hooks (mem.Injector, cpu.Injector —
// the same pattern as trace.Tracer, so the uninjected fast paths stay
// untouched).
//
// Every fault point fires exactly once. That makes retry loops
// provably terminating: a bounded retry against a finite plan either
// exhausts the plan's faults for that operation or gives up with the
// image rolled back, which is exactly the property the chaos harness
// (internal/chaos, cmd/mvstress) asserts seed by seed.
package faultinject

import (
	"fmt"
	"math/rand"

	"repro/internal/machine"
	"repro/internal/mem"
)

// Kind classifies an injected fault.
type Kind uint8

// The injectable fault kinds.
const (
	// KindProtect fails a mem.Protect call before it mutates any page
	// — the mprotect EPERM/EAGAIN of a user-mode patching runtime.
	KindProtect Kind = iota
	// KindWriteTear interrupts a multi-byte text write after Tear
	// bytes, leaving a torn call-site (a partial rel32) in memory.
	KindWriteTear
	// KindDropFlush silently drops an icache invalidation on one
	// hardware thread — a lost SMP shootdown IPI.
	KindDropFlush
	// KindFetchFault raises a spurious fault on an instruction fetch;
	// the PC does not advance, so re-stepping retries the fetch.
	KindFetchFault
	// KindPokeStep interposes on a text-poke protocol phase: when it
	// fires, the plan invokes OnPokeStep, which a chaos harness points
	// at "step the victim CPUs now" — landing guest execution exactly
	// between two phases of the breakpoint protocol, where a torn
	// instruction would be fetchable if the protocol were wrong.
	KindPokeStep
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindProtect:
		return "protect"
	case KindWriteTear:
		return "write-tear"
	case KindDropFlush:
		return "drop-flush"
	case KindFetchFault:
		return "fetch-fault"
	case KindPokeStep:
		return "poke-step"
	}
	return "unknown"
}

// Point is one armed fault. Protect and write-tear points count
// text-segment operations machine-wide; drop-flush points count flush
// deliveries per hardware thread; fetch faults fire at the first fetch
// at or after Cycle on their thread.
type Point struct {
	Kind Kind
	// Op is the zero-based index of the matching operation the point
	// fires on (per kind; per CPU for KindDropFlush).
	Op uint64
	// CPU binds KindDropFlush and KindFetchFault to one hardware
	// thread (the machine's CPU index).
	CPU int
	// Cycle arms KindFetchFault: the fault fires at the first fetch on
	// CPU at or after this simulated cycle.
	Cycle uint64
	// Transient marks the fault retryable: the same operation, retried,
	// succeeds (the point has fired and is disarmed). Non-transient
	// faults model hard failures the commit must abort on.
	Transient bool
	// Tear is the number of bytes a KindWriteTear write lands before
	// faulting (clamped to the write length).
	Tear int
	// Window scopes a KindDropFlush point to text-poke windows: the
	// point only matches while a BRK byte is planted (between phases 1
	// and 3). Losing the shootdown exactly there is the hardest case
	// for the protocol's per-phase acknowledge loop.
	Window bool
}

// Fault is the error an armed point produces when it fires.
type Fault struct {
	Point Point
	Addr  uint64
	inner error // the wrapped *mem.Fault of a fetch fault
}

// Error implements the error interface.
func (f *Fault) Error() string {
	kind := "injected " + f.Point.Kind.String()
	if f.Point.Transient {
		kind += " (transient)"
	}
	return fmt.Sprintf("faultinject: %s fault at %#x", kind, f.Addr)
}

// Unwrap exposes the underlying *mem.Fault of a fetch fault, so
// errors.As sees the architectural fault metadata through every layer.
func (f *Fault) Unwrap() error { return f.inner }

// FaultTransient reports whether retrying the faulted operation may
// succeed. The crash-consistency layer in core discovers it through an
// errors.As interface probe, keeping core free of a faultinject
// dependency.
func (f *Fault) FaultTransient() bool { return f.Point.Transient }

// Stats counts what a plan actually injected.
type Stats struct {
	Protect    uint64
	WriteTears uint64
	DropFlush  uint64
	FetchFault uint64
	PokeSteps  uint64
}

// Total returns the number of faults fired.
func (s Stats) Total() uint64 {
	return s.Protect + s.WriteTears + s.DropFlush + s.FetchFault + s.PokeSteps
}

type textRange struct{ lo, hi uint64 }

// Plan is a finite, deterministic set of armed fault points. It
// implements mem.Injector, cpu.Injector and machine.Injector. A Plan
// is not safe for concurrent use; the simulator interleaves CPUs on
// one goroutine, matching that model.
type Plan struct {
	points []Point
	fired  []bool
	ops    map[opKey]uint64
	text   []textRange

	// pokeOpen tracks whether a text-poke breakpoint window is open
	// (between protocol phases 1 and 3); Window-scoped drop-flush
	// points only match while it is.
	pokeOpen bool

	// OnPokeStep, when non-nil, is invoked each time a KindPokeStep
	// point fires, with the just-completed phase and the poked range.
	// The chaos harness points it at its victim-CPU stepper so guest
	// execution lands between protocol phases.
	OnPokeStep func(phase int, addr, n uint64)

	// Stats counts fired faults by kind.
	Stats Stats
}

// opKey identifies one deterministic operation counter: mem-side kinds
// use cpu == -1, CPU-bound kinds count per hardware thread.
type opKey struct {
	kind Kind
	cpu  int
}

// Exact returns a plan firing exactly the given points.
func Exact(points ...Point) *Plan {
	return &Plan{
		points: append([]Point(nil), points...),
		fired:  make([]bool, len(points)),
		ops:    make(map[opKey]uint64),
	}
}

// Opts bounds the seeded plan generator.
type Opts struct {
	// Points is the number of fault points to arm (default 4).
	Points int
	// CPUs is how many hardware threads CPU-bound faults may target
	// (default 1).
	CPUs int
	// MaxOp bounds the operation index of protect/tear/flush points
	// (default 24): points beyond the run's operation count simply
	// never fire, which is fine — a chaos seed need not use its whole
	// plan.
	MaxOp uint64
	// MaxCycle bounds the arming cycle of fetch faults (default 1e6).
	MaxCycle uint64
	// Kinds restricts the generated kinds (default: the four legacy
	// kinds, so pre-existing seeds keep producing identical plans).
	Kinds []Kind
	// Poke adds the text-poke fault kinds to the default set:
	// KindPokeStep points, plus Window-scoped drop-flush points that
	// only fire inside a BRK window. Ignored when Kinds is set.
	Poke bool
}

// New generates a deterministic plan from a seed: the same seed and
// options always arm the same points.
func New(seed int64, o Opts) *Plan {
	if o.Points <= 0 {
		o.Points = 4
	}
	if o.CPUs <= 0 {
		o.CPUs = 1
	}
	if o.MaxOp == 0 {
		o.MaxOp = 24
	}
	if o.MaxCycle == 0 {
		o.MaxCycle = 1_000_000
	}
	kinds := o.Kinds
	if len(kinds) == 0 {
		kinds = []Kind{KindProtect, KindWriteTear, KindDropFlush, KindFetchFault}
		if o.Poke {
			kinds = append(kinds, KindPokeStep)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	points := make([]Point, o.Points)
	for i := range points {
		pt := Point{
			Kind:      kinds[rng.Intn(len(kinds))],
			Op:        uint64(rng.Int63n(int64(o.MaxOp))),
			CPU:       rng.Intn(o.CPUs),
			Transient: rng.Intn(2) == 0,
		}
		switch pt.Kind {
		case KindWriteTear:
			pt.Tear = 1 + rng.Intn(4) // always short of a full rel32
		case KindFetchFault:
			pt.Cycle = uint64(rng.Int63n(int64(o.MaxCycle)))
			pt.Transient = true // spurious by definition: a retry fetches fine
		case KindDropFlush:
			pt.Transient = true // re-issuing the flush delivers it
			if o.Poke {
				pt.Window = rng.Intn(2) == 0
			}
		case KindPokeStep:
			pt.Transient = true // interleaving steps is not a failure
		}
		points[i] = pt
	}
	return Exact(points...)
}

// Points returns the plan's armed points (fired or not).
func (p *Plan) Points() []Point { return append([]Point(nil), p.points...) }

// Remaining returns how many points have not fired yet.
func (p *Plan) Remaining() int {
	n := 0
	for _, f := range p.fired {
		if !f {
			n++
		}
	}
	return n
}

// Attach wires the plan into a machine: the memory system, every
// hardware thread (current and future), and the text ranges write
// tears are scoped to (injecting tears into guest data stores would
// perturb program semantics rather than the patching runtime).
func (p *Plan) Attach(m *machine.Machine) {
	p.text = p.text[:0]
	for _, seg := range m.Image.Segments {
		if seg.Prot&mem.Exec != 0 {
			p.text = append(p.text, textRange{seg.Addr, seg.Addr + uint64(len(seg.Data))})
		}
	}
	m.SetInjector(p)
}

// Detach removes any injector from the machine, restoring the
// hook-free fast paths.
func Detach(m *machine.Machine) { m.SetInjector(nil) }

// TextRanges reports the executable ranges the plan scopes write
// tears to (set by Attach).
func (p *Plan) TextRanges() int { return len(p.text) }

func (p *Plan) inText(addr uint64) bool {
	for _, r := range p.text {
		if addr >= r.lo && addr < r.hi {
			return true
		}
	}
	return false
}

// bump returns the current operation index for the key and advances it.
func (p *Plan) bump(k Kind, cpu int) uint64 {
	key := opKey{k, cpu}
	n := p.ops[key]
	p.ops[key] = n + 1
	return n
}

// take fires and disarms the first matching unfired point.
func (p *Plan) take(match func(pt Point) bool) (Point, bool) {
	for i, pt := range p.points {
		if !p.fired[i] && match(pt) {
			p.fired[i] = true
			return pt, true
		}
	}
	return Point{}, false
}

// ProtectFault implements mem.Injector.
func (p *Plan) ProtectFault(addr, length uint64, prot mem.Prot) error {
	n := p.bump(KindProtect, -1)
	pt, ok := p.take(func(pt Point) bool { return pt.Kind == KindProtect && pt.Op == n })
	if !ok {
		return nil
	}
	p.Stats.Protect++
	return &Fault{Point: pt, Addr: addr}
}

// WriteTear implements mem.Injector. Only text-segment writes are
// considered: those are exactly the patching runtime's stores (guest
// code cannot write executable pages), so guest data stores never
// consume operation counts and determinism survives workload changes.
func (p *Plan) WriteTear(addr uint64, n int) (int, error) {
	if !p.inText(addr) {
		return 0, nil
	}
	op := p.bump(KindWriteTear, -1)
	pt, ok := p.take(func(pt Point) bool { return pt.Kind == KindWriteTear && pt.Op == op })
	if !ok {
		return 0, nil
	}
	p.Stats.WriteTears++
	tear := pt.Tear
	if tear >= n {
		tear = n - 1 // a "tear" that lands everything is not a tear
		if tear < 0 {
			tear = 0
		}
	}
	return tear, &Fault{Point: pt, Addr: addr}
}

// DropFlush implements cpu.Injector. Window-scoped points only match
// while a text-poke breakpoint window is open.
func (p *Plan) DropFlush(cpu int, addr, n uint64) bool {
	op := p.bump(KindDropFlush, cpu)
	_, ok := p.take(func(pt Point) bool {
		return pt.Kind == KindDropFlush && pt.CPU == cpu && pt.Op == op &&
			(!pt.Window || p.pokeOpen)
	})
	if ok {
		p.Stats.DropFlush++
	}
	return ok
}

// PokePhase implements machine.PokePhaser: it tracks the open BRK
// window for Window-scoped drop-flush points and fires any armed
// KindPokeStep point, handing control to OnPokeStep so the harness can
// interleave victim-CPU steps between protocol phases.
func (p *Plan) PokePhase(phase int, addr, n uint64) {
	switch phase {
	case 1:
		p.pokeOpen = true
	case 3:
		p.pokeOpen = false
	}
	op := p.bump(KindPokeStep, -1)
	_, ok := p.take(func(pt Point) bool { return pt.Kind == KindPokeStep && pt.Op == op })
	if !ok {
		return
	}
	p.Stats.PokeSteps++
	if p.OnPokeStep != nil {
		p.OnPokeStep(phase, addr, n)
	}
}

// FetchFault implements cpu.Injector.
func (p *Plan) FetchFault(cpu int, pc, cycles uint64) error {
	pt, ok := p.take(func(pt Point) bool {
		return pt.Kind == KindFetchFault && pt.CPU == cpu && cycles >= pt.Cycle
	})
	if !ok {
		return nil
	}
	p.Stats.FetchFault++
	return &Fault{
		Point: pt,
		Addr:  pc,
		inner: &mem.Fault{Addr: pc, Kind: mem.AccessExec, Prot: mem.RX, Mapped: true},
	}
}

// Plan satisfies the union injector interface (and with it the mem-
// and cpu-side hooks it embeds), plus the poke-phase observer the
// machine probes for during text pokes.
var (
	_ machine.Injector   = (*Plan)(nil)
	_ machine.PokePhaser = (*Plan)(nil)
)
