package faultinject

import (
	"reflect"
	"testing"

	"repro/internal/mem"
)

// TestPlanStateRoundTrip: fire part of a plan, export its progress,
// rebuild the plan from the same seed, import — the rebuilt plan must
// behave exactly like the original from that point on.
func TestPlanStateRoundTrip(t *testing.T) {
	opts := Opts{Points: 8, CPUs: 2, MaxOp: 10, MaxCycle: 1000}
	p := New(99, opts)
	// Drive deterministic operation streams past some points.
	for i := 0; i < 6; i++ {
		p.ProtectFault(0x1000, 64, mem.RX)
		p.DropFlush(i%2, 0x2000, 16)
		p.FetchFault(i%2, 0x3000, uint64(200*i))
	}
	st := p.Export()
	if st2 := p.Export(); !reflect.DeepEqual(st, st2) {
		t.Fatalf("Export is not deterministic:\n%+v\n%+v", st, st2)
	}

	q := New(99, opts)
	if err := q.Import(st); err != nil {
		t.Fatalf("Import: %v", err)
	}
	if p.Remaining() != q.Remaining() {
		t.Fatalf("Remaining: original %d, imported %d", p.Remaining(), q.Remaining())
	}
	// From here both plans must fire identically.
	for i := 0; i < 10; i++ {
		pe := p.ProtectFault(0x4000, 32, mem.RW)
		qe := q.ProtectFault(0x4000, 32, mem.RW)
		if (pe == nil) != (qe == nil) {
			t.Fatalf("op %d: protect fired %v vs %v", i, pe, qe)
		}
		if p.DropFlush(0, 0x5000, 8) != q.DropFlush(0, 0x5000, 8) {
			t.Fatalf("op %d: drop-flush diverged", i)
		}
	}
	if !reflect.DeepEqual(p.Export(), q.Export()) {
		t.Fatalf("states diverged after identical operation streams")
	}
}

// TestPlanImportMismatch: a state from a different plan shape is
// refused rather than silently misapplied.
func TestPlanImportMismatch(t *testing.T) {
	p := New(1, Opts{Points: 4})
	st := New(2, Opts{Points: 6}).Export()
	if err := p.Import(st); err == nil {
		t.Fatalf("Import accepted a state with the wrong point count")
	}
}
