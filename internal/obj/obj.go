// Package obj defines the relocatable object format produced by the
// MVC compiler and consumed by the linker.
//
// The format mirrors the properties of ELF that the multiverse design
// (paper §5) depends on: named sections that the linker concatenates
// across translation units, so that per-unit descriptor records form
// one contiguous array in the final image; and relocations on the
// address fields inside descriptors, so that position-independent
// layout comes for free.
package obj

import (
	"fmt"
	"sort"
)

// Multiverse descriptor section names (paper Figure 2).
const (
	SecText        = ".text"
	SecROData      = ".rodata"
	SecData        = ".data"
	SecBSS         = ".bss"
	SecMVVars      = "multiverse.variables"
	SecMVFuncs     = "multiverse.functions"
	SecMVCallSites = "multiverse.callsites"
	SecMVStrings   = "multiverse.strings"
	SecMVOSR       = "multiverse.osr"
)

// SectionFlags describe how a section is mapped at run time.
type SectionFlags uint8

// Section flags.
const (
	SecFlagWrite  SectionFlags = 1 << iota // mapped writable
	SecFlagExec                            // mapped executable
	SecFlagNoBits                          // occupies no file space (.bss)
)

// Section is a named chunk of bytes (or reserved zero space).
type Section struct {
	Name  string
	Data  []byte
	Size  uint64 // for NoBits sections; otherwise len(Data)
	Align uint64 // power of two; 0 means 1
	Flags SectionFlags
}

// ByteSize returns the run-time size of the section.
func (s *Section) ByteSize() uint64 {
	if s.Flags&SecFlagNoBits != 0 {
		return s.Size
	}
	return uint64(len(s.Data))
}

// Symbol names a location within a section.
type Symbol struct {
	Name    string
	Section string // defining section; "" for undefined symbols
	Offset  uint64 // offset within the section
	Size    uint64
	Global  bool
}

// RelocType selects the relocation computation.
type RelocType uint8

// Relocation types.
const (
	// RelocRel32 patches a 4-byte field at Offset with
	// S + Addend - (P + 4), where P is the address of the field.
	// Because m64 branch displacements are relative to the end of the
	// instruction and the displacement field is the final 4 bytes,
	// this is exactly the branch-target relocation.
	RelocRel32 RelocType = iota
	// RelocAbs64 patches an 8-byte field with S + Addend.
	RelocAbs64
)

func (t RelocType) String() string {
	switch t {
	case RelocRel32:
		return "rel32"
	case RelocAbs64:
		return "abs64"
	}
	return fmt.Sprintf("reloc%d", uint8(t))
}

// Reloc is a relocation record.
type Reloc struct {
	Section string // section whose bytes are patched
	Offset  uint64 // offset of the field within the section
	Type    RelocType
	Symbol  string
	Addend  int64
}

// Object is one translation unit's compilation result.
type Object struct {
	Name     string // source name, for diagnostics
	Sections []*Section
	Symbols  []Symbol
	Relocs   []Reloc
}

// New returns an empty object with the given diagnostic name.
func New(name string) *Object {
	return &Object{Name: name}
}

// Section returns the section with the given name, creating it (with
// the conventional flags for well-known names) on first use.
func (o *Object) Section(name string) *Section {
	for _, s := range o.Sections {
		if s.Name == name {
			return s
		}
	}
	s := &Section{Name: name, Align: 16}
	switch name {
	case SecText:
		s.Flags = SecFlagExec
	case SecData:
		s.Flags = SecFlagWrite
	case SecBSS:
		s.Flags = SecFlagWrite | SecFlagNoBits
	}
	o.Sections = append(o.Sections, s)
	return s
}

// AddSymbol records a symbol definition or reference.
func (o *Object) AddSymbol(sym Symbol) {
	o.Symbols = append(o.Symbols, sym)
}

// AddReloc records a relocation.
func (o *Object) AddReloc(r Reloc) {
	o.Relocs = append(o.Relocs, r)
}

// DefinedSymbols returns the symbols defined by this object, sorted by
// name.
func (o *Object) DefinedSymbols() []Symbol {
	var out []Symbol
	for _, s := range o.Symbols {
		if s.Section != "" {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Validate performs structural checks: every relocation must refer to
// an existing section and lie within its bounds, and symbols must lie
// within their sections.
func (o *Object) Validate() error {
	secs := make(map[string]*Section, len(o.Sections))
	for _, s := range o.Sections {
		if _, dup := secs[s.Name]; dup {
			return fmt.Errorf("obj %s: duplicate section %q", o.Name, s.Name)
		}
		if s.Flags&SecFlagNoBits != 0 && len(s.Data) > 0 {
			return fmt.Errorf("obj %s: NoBits section %q has data", o.Name, s.Name)
		}
		secs[s.Name] = s
	}
	for _, sym := range o.Symbols {
		if sym.Section == "" {
			continue
		}
		s, ok := secs[sym.Section]
		if !ok {
			return fmt.Errorf("obj %s: symbol %q in unknown section %q", o.Name, sym.Name, sym.Section)
		}
		if sym.Offset > s.ByteSize() {
			return fmt.Errorf("obj %s: symbol %q offset %#x beyond section %q size %#x",
				o.Name, sym.Name, sym.Offset, sym.Section, s.ByteSize())
		}
	}
	for _, r := range o.Relocs {
		s, ok := secs[r.Section]
		if !ok {
			return fmt.Errorf("obj %s: relocation in unknown section %q", o.Name, r.Section)
		}
		width := uint64(4)
		if r.Type == RelocAbs64 {
			width = 8
		}
		if s.Flags&SecFlagNoBits != 0 {
			return fmt.Errorf("obj %s: relocation in NoBits section %q", o.Name, r.Section)
		}
		if r.Offset+width > uint64(len(s.Data)) {
			return fmt.Errorf("obj %s: relocation at %q+%#x overruns section", o.Name, r.Section, r.Offset)
		}
	}
	return nil
}
