package obj

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// objMagic identifies serialized object files.
var objMagic = [8]byte{'M', 'V', 'O', 'B', 'J', '0', '0', '1'}

type writer struct {
	w   *bufio.Writer
	err error
}

func (w *writer) bytes(b []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

func (w *writer) u64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	w.bytes(buf[:])
}

func (w *writer) str(s string) {
	w.u64(uint64(len(s)))
	w.bytes([]byte(s))
}

func (w *writer) blob(b []byte) {
	w.u64(uint64(len(b)))
	w.bytes(b)
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) bytes(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if n > 1<<30 {
		r.err = fmt.Errorf("obj: implausible length %d", n)
		return nil
	}
	b := make([]byte, n)
	_, r.err = io.ReadFull(r.r, b)
	return b
}

func (r *reader) u64() uint64 {
	b := r.bytes(8)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) str() string { return string(r.bytes(r.u64())) }

func (r *reader) blob() []byte { return r.bytes(r.u64()) }

// Write serializes the object to w.
func (o *Object) Write(out io.Writer) error {
	w := &writer{w: bufio.NewWriter(out)}
	w.bytes(objMagic[:])
	w.str(o.Name)
	w.u64(uint64(len(o.Sections)))
	for _, s := range o.Sections {
		w.str(s.Name)
		w.u64(s.Size)
		w.u64(s.Align)
		w.u64(uint64(s.Flags))
		w.blob(s.Data)
	}
	w.u64(uint64(len(o.Symbols)))
	for _, s := range o.Symbols {
		w.str(s.Name)
		w.str(s.Section)
		w.u64(s.Offset)
		w.u64(s.Size)
		if s.Global {
			w.u64(1)
		} else {
			w.u64(0)
		}
	}
	w.u64(uint64(len(o.Relocs)))
	for _, r := range o.Relocs {
		w.str(r.Section)
		w.u64(r.Offset)
		w.u64(uint64(r.Type))
		w.str(r.Symbol)
		w.u64(uint64(r.Addend))
	}
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Read deserializes an object from in.
func Read(in io.Reader) (*Object, error) {
	r := &reader{r: bufio.NewReader(in)}
	magic := r.bytes(8)
	if r.err != nil {
		return nil, r.err
	}
	if string(magic) != string(objMagic[:]) {
		return nil, fmt.Errorf("obj: bad magic %q", magic)
	}
	o := New(r.str())
	nsec := r.u64()
	for i := uint64(0); i < nsec && r.err == nil; i++ {
		s := &Section{}
		s.Name = r.str()
		s.Size = r.u64()
		s.Align = r.u64()
		s.Flags = SectionFlags(r.u64())
		s.Data = r.blob()
		o.Sections = append(o.Sections, s)
	}
	nsym := r.u64()
	for i := uint64(0); i < nsym && r.err == nil; i++ {
		var s Symbol
		s.Name = r.str()
		s.Section = r.str()
		s.Offset = r.u64()
		s.Size = r.u64()
		s.Global = r.u64() != 0
		o.Symbols = append(o.Symbols, s)
	}
	nrel := r.u64()
	for i := uint64(0); i < nrel && r.err == nil; i++ {
		var rel Reloc
		rel.Section = r.str()
		rel.Offset = r.u64()
		rel.Type = RelocType(r.u64())
		rel.Symbol = r.str()
		rel.Addend = int64(r.u64())
		o.Relocs = append(o.Relocs, rel)
	}
	if r.err != nil {
		return nil, r.err
	}
	return o, o.Validate()
}
