package obj

import (
	"bytes"
	"reflect"
	"testing"
)

func sampleObject() *Object {
	o := New("sample.c")
	text := o.Section(SecText)
	text.Data = []byte{0x10, 0x00, 1, 0, 0, 0, 0, 0, 0, 0, 0x52} // movi r0,1; ret
	data := o.Section(SecData)
	data.Data = []byte{42, 0, 0, 0}
	bss := o.Section(SecBSS)
	bss.Size = 128
	vars := o.Section(SecMVVars)
	vars.Data = make([]byte, 32)
	o.AddSymbol(Symbol{Name: "f", Section: SecText, Offset: 0, Size: 11, Global: true})
	o.AddSymbol(Symbol{Name: "g", Section: SecData, Offset: 0, Size: 4, Global: true})
	o.AddSymbol(Symbol{Name: "buf", Section: SecBSS, Offset: 0, Size: 128, Global: false})
	o.AddReloc(Reloc{Section: SecMVVars, Offset: 0, Type: RelocAbs64, Symbol: "g"})
	return o
}

func TestSectionCreatesWithConventionalFlags(t *testing.T) {
	o := New("t")
	if o.Section(SecText).Flags&SecFlagExec == 0 {
		t.Error(".text not executable")
	}
	if o.Section(SecData).Flags&SecFlagWrite == 0 {
		t.Error(".data not writable")
	}
	b := o.Section(SecBSS)
	if b.Flags&SecFlagNoBits == 0 || b.Flags&SecFlagWrite == 0 {
		t.Error(".bss flags wrong")
	}
	if o.Section(SecMVVars).Flags != 0 {
		t.Error("descriptor section should be read-only")
	}
	// Second lookup returns the same section.
	if o.Section(SecText) != o.Sections[0] {
		t.Error("Section did not return existing section")
	}
}

func TestValidateOK(t *testing.T) {
	if err := sampleObject().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBrokenObjects(t *testing.T) {
	cases := map[string]func(o *Object){
		"symbol in unknown section": func(o *Object) {
			o.AddSymbol(Symbol{Name: "x", Section: ".nope", Offset: 0})
		},
		"symbol beyond section": func(o *Object) {
			o.AddSymbol(Symbol{Name: "x", Section: SecData, Offset: 9999})
		},
		"reloc in unknown section": func(o *Object) {
			o.AddReloc(Reloc{Section: ".nope", Symbol: "g"})
		},
		"reloc overruns section": func(o *Object) {
			o.AddReloc(Reloc{Section: SecData, Offset: 2, Type: RelocAbs64, Symbol: "g"})
		},
		"reloc in NoBits section": func(o *Object) {
			o.AddReloc(Reloc{Section: SecBSS, Offset: 0, Type: RelocAbs64, Symbol: "g"})
		},
		"duplicate section": func(o *Object) {
			o.Sections = append(o.Sections, &Section{Name: SecText})
		},
		"NoBits with data": func(o *Object) {
			o.Section(SecBSS).Data = []byte{1}
		},
	}
	for name, breakIt := range cases {
		o := sampleObject()
		breakIt(o)
		if err := o.Validate(); err == nil {
			t.Errorf("%s: Validate passed", name)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	o := sampleObject()
	var buf bytes.Buffer
	if err := o.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != o.Name {
		t.Errorf("name = %q", got.Name)
	}
	if len(got.Sections) != len(o.Sections) {
		t.Fatalf("sections = %d, want %d", len(got.Sections), len(o.Sections))
	}
	for i := range o.Sections {
		if !reflect.DeepEqual(normalize(got.Sections[i]), normalize(o.Sections[i])) {
			t.Errorf("section %d differs: %+v vs %+v", i, got.Sections[i], o.Sections[i])
		}
	}
	if !reflect.DeepEqual(got.Symbols, o.Symbols) {
		t.Errorf("symbols differ")
	}
	if !reflect.DeepEqual(got.Relocs, o.Relocs) {
		t.Errorf("relocs differ")
	}
}

// normalize maps empty and nil Data to the same representation.
func normalize(s *Section) Section {
	c := *s
	if len(c.Data) == 0 {
		c.Data = nil
	}
	return c
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTANOBJECT....."))); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	o := sampleObject()
	var buf bytes.Buffer
	if err := o.Write(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, n := range []int{0, 4, 8, len(full) / 2, len(full) - 1} {
		if _, err := Read(bytes.NewReader(full[:n])); err == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}
}

func TestDefinedSymbolsSorted(t *testing.T) {
	o := sampleObject()
	o.AddSymbol(Symbol{Name: "aaa", Section: SecText, Offset: 1})
	o.AddSymbol(Symbol{Name: "zzz"}) // undefined, excluded
	defs := o.DefinedSymbols()
	for i := 1; i < len(defs); i++ {
		if defs[i-1].Name > defs[i].Name {
			t.Fatalf("not sorted: %q > %q", defs[i-1].Name, defs[i].Name)
		}
	}
	for _, d := range defs {
		if d.Section == "" {
			t.Errorf("undefined symbol %q in DefinedSymbols", d.Name)
		}
	}
}

func TestByteSize(t *testing.T) {
	s := &Section{Data: make([]byte, 10)}
	if s.ByteSize() != 10 {
		t.Error("data section size")
	}
	b := &Section{Flags: SecFlagNoBits, Size: 77}
	if b.ByteSize() != 77 {
		t.Error("nobits section size")
	}
}

func TestRelocTypeString(t *testing.T) {
	if RelocRel32.String() != "rel32" || RelocAbs64.String() != "abs64" {
		t.Error("reloc type strings")
	}
	if RelocType(9).String() == "" {
		t.Error("unknown reloc type string empty")
	}
}
