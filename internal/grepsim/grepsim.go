// Package grepsim reproduces the GNU grep case study (§6.2.3): at
// startup grep decides from the locale and the pattern whether the
// matching loop must handle multi-byte (UTF-8) characters; the mode is
// fixed afterwards, which makes it a multiverse candidate. The paper
// runs the pattern "a.a" over a 2 GiB file of hexadecimal-formatted
// random numbers and measures end-to-end runtime (−2.73 %).
//
// Here the corpus is a scaled-down in-memory buffer of the same
// content class, the matcher processes it line by line (as grep does),
// and the multi-byte prescan guard sits on the per-line path.
package grepsim

import (
	"fmt"
	"math/rand"

	"repro/internal/bench"
	"repro/internal/core"
)

// CorpusSize is the size of the scaled-down input buffer.
const CorpusSize = 1 << 16

// Build selects plain (dynamic mode checks) or multiversed grep.
type Build int

// The two grep builds.
const (
	Plain Build = iota
	Multiverse
)

func (b Build) String() string {
	if b == Multiverse {
		return "w/ Multiverse"
	}
	return "w/o Multiverse"
}

func grepSource(b Build) string {
	attr := ""
	if b == Multiverse {
		attr = "multiverse "
	}
	return fmt.Sprintf(`
	%[1]sint mb_mode; // multi-byte locale handling required?
	char text[%[2]d];
	long mb_chars;

	// mb_prescan models grep's multi-byte pass over a line: it counts
	// the characters that would need mbrtowc() treatment.
	void mb_prescan(long off, long len) {
		for (long i = 0; i < len; i++) {
			// Bytes are examined as unsigned char, like mbrtowc does;
			// plain char is signed and would hide the high-bit bytes.
			if ((uchar)text[off + i] > 127) { mb_chars++; }
		}
	}

	// match_line searches one line for the pattern "a.a". The mode
	// check is the variation point the paper multiverses: fixed after
	// startup, evaluated per line otherwise.
	%[1]slong match_line(long off, long len) {
		if (mb_mode) {
			mb_prescan(off, len);
		}
		long matches = 0;
		for (long i = 0; i + 2 < len; i++) {
			if (text[off + i] == 'a') {
				if (text[off + i + 2] == 'a') { matches++; }
			}
		}
		return matches;
	}

	// grep_run walks the buffer line by line (newline-separated) and
	// returns the total match count.
	long grep_run(long n) {
		long matches = 0;
		long start = 0;
		for (long i = 0; i < n; i++) {
			if (text[i] == '\n') {
				matches += match_line(start, i - start);
				start = i + 1;
			}
		}
		if (start < n) {
			matches += match_line(start, n - start);
		}
		return matches;
	}

	ulong bench_grep(long n) {
		ulong t0 = __rdtsc();
		long m = grep_run(n);
		ulong t1 = __rdtsc();
		mb_chars = mb_chars + 0 * m; // keep m alive
		return t1 - t0;
	}
	`, attr, CorpusSize)
}

// Grep is one built grep binary with a loaded corpus.
type Grep struct {
	Build Build
	sys   *core.System
	size  int
}

// BuildGrep compiles one flavor and loads the standard corpus.
func BuildGrep(b Build) (*Grep, error) {
	sys, err := core.BuildSystem(core.GenOptions{}, nil,
		core.Source{Name: "grep", Text: grepSource(b)})
	if err != nil {
		return nil, err
	}
	g := &Grep{Build: b, sys: sys}
	if err := g.LoadCorpus(Corpus(CorpusSize)); err != nil {
		return nil, err
	}
	return g, nil
}

// Corpus generates n bytes of hexadecimal-formatted random numbers,
// one number per line — the paper's workload class. The generator is
// seeded deterministically so every build sees identical input.
func Corpus(n int) []byte {
	rng := rand.New(rand.NewSource(20190325)) // EuroSys'19 conference day
	out := make([]byte, 0, n)
	for len(out) < n {
		out = append(out, []byte(fmt.Sprintf("%016x\n", rng.Uint64()))...)
	}
	return out[:n]
}

// LoadCorpus writes the input buffer into the grep process.
func (g *Grep) LoadCorpus(data []byte) error {
	if len(data) > CorpusSize {
		return fmt.Errorf("grepsim: corpus %d exceeds buffer %d", len(data), CorpusSize)
	}
	addr, err := g.sys.Machine.Symbol("text")
	if err != nil {
		return err
	}
	if err := g.sys.Machine.Mem.Write(addr, data); err != nil {
		return err
	}
	g.size = len(data)
	return nil
}

// SetMode fixes the multi-byte mode after "startup" (for the
// multiversed build this is the commit grep performs once the locale
// and pattern are known).
func (g *Grep) SetMode(multibyte bool) error {
	v := uint64(0)
	if multibyte {
		v = 1
	}
	if g.Build == Plain {
		return g.sys.Machine.WriteGlobal("mb_mode", 4, v)
	}
	if err := g.sys.SetSwitch("mb_mode", int64(v)); err != nil {
		return err
	}
	_, err := g.sys.RT.Commit()
	return err
}

// Matches runs grep once and returns the match count, for correctness
// checks against a host-side reference.
func (g *Grep) Matches() (uint64, error) {
	return g.sys.Machine.CallNamed("grep_run", uint64(g.size))
}

// ReferenceMatches is the host-side oracle for the "a.a" pattern over
// newline-separated lines.
func ReferenceMatches(data []byte) uint64 {
	var total uint64
	start := 0
	countLine := func(line []byte) {
		for i := 0; i+2 < len(line); i++ {
			if line[i] == 'a' && line[i+2] == 'a' {
				total++
			}
		}
	}
	for i, b := range data {
		if b == '\n' {
			countLine(data[start:i])
			start = i + 1
		}
	}
	if start < len(data) {
		countLine(data[start:])
	}
	return total
}

// Measure returns end-to-end cycles for one full grep run over the
// corpus.
func (g *Grep) Measure(samples int) (bench.Result, error) {
	one := func() (float64, error) {
		v, err := g.sys.Machine.CallNamed("bench_grep", uint64(g.size))
		return float64(v), err
	}
	for i := 0; i < 2; i++ {
		if _, err := one(); err != nil {
			return bench.Result{}, err
		}
	}
	var firstErr error
	res := bench.Measure(samples, func() float64 {
		v, err := one()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	})
	return res, firstErr
}
