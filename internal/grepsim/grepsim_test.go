package grepsim

import (
	"bytes"
	"testing"
)

func TestCorpusIsHexLines(t *testing.T) {
	c := Corpus(1024)
	if len(c) != 1024 {
		t.Fatalf("len = %d", len(c))
	}
	lines := bytes.Split(c, []byte{'\n'})
	for i, l := range lines[:len(lines)-1] {
		if len(l) != 16 {
			t.Fatalf("line %d has length %d", i, len(l))
		}
		for _, b := range l {
			if !(b >= '0' && b <= '9' || b >= 'a' && b <= 'f') {
				t.Fatalf("non-hex byte %q", b)
			}
		}
	}
	// Deterministic.
	if !bytes.Equal(c, Corpus(1024)) {
		t.Error("corpus not deterministic")
	}
}

func TestMatchCountAgainstReference(t *testing.T) {
	for _, b := range []Build{Plain, Multiverse} {
		g, err := BuildGrep(b)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.SetMode(false); err != nil {
			t.Fatal(err)
		}
		got, err := g.Matches()
		if err != nil {
			t.Fatal(err)
		}
		want := ReferenceMatches(Corpus(CorpusSize))
		if got != want {
			t.Errorf("%v: matches = %d, want %d", b, got, want)
		}
		if want == 0 {
			t.Fatal("corpus has no matches; benchmark is degenerate")
		}
		// Mode must not change the result on an ASCII corpus.
		if err := g.SetMode(true); err != nil {
			t.Fatal(err)
		}
		got2, err := g.Matches()
		if err != nil {
			t.Fatal(err)
		}
		if got2 != want {
			t.Errorf("%v multibyte mode: matches = %d, want %d", b, got2, want)
		}
	}
}

func TestCustomCorpusAndOverflow(t *testing.T) {
	g, err := BuildGrep(Plain)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.LoadCorpus([]byte("aba\naxa\nzzz\n")); err != nil {
		t.Fatal(err)
	}
	got, err := g.Matches()
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("matches = %d, want 2", got)
	}
	if err := g.LoadCorpus(make([]byte, CorpusSize+1)); err == nil {
		t.Error("oversized corpus accepted")
	}
}

func TestEndToEndImprovementShape(t *testing.T) {
	plain, err := BuildGrep(Plain)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := BuildGrep(Multiverse)
	if err != nil {
		t.Fatal(err)
	}
	// Single-byte locale, like the paper's benchmark setup.
	if err := plain.SetMode(false); err != nil {
		t.Fatal(err)
	}
	if err := mv.SetMode(false); err != nil {
		t.Fatal(err)
	}
	p, err := plain.Measure(5)
	if err != nil {
		t.Fatal(err)
	}
	v, err := mv.Measure(5)
	if err != nil {
		t.Fatal(err)
	}
	reduction := (p.Mean - v.Mean) / p.Mean * 100
	// Paper: 2.73 % end-to-end. Shape: a small but definite win,
	// nowhere near the 40-50 % of the musl microbenchmarks.
	if reduction <= 0.5 {
		t.Errorf("no end-to-end win: plain %.0f, mv %.0f (%.2f%%)", p.Mean, v.Mean, reduction)
	}
	if reduction > 15 {
		t.Errorf("implausibly large end-to-end win %.2f%%", reduction)
	}
}

func TestMultibyteModeAlsoImproves(t *testing.T) {
	// Binding mode=1 removes the per-line mode branch but keeps the
	// prescan: the win is smaller than the single-byte case yet real.
	plain, err := BuildGrep(Plain)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := BuildGrep(Multiverse)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.SetMode(true); err != nil {
		t.Fatal(err)
	}
	if err := mv.SetMode(true); err != nil {
		t.Fatal(err)
	}
	p, err := plain.Measure(3)
	if err != nil {
		t.Fatal(err)
	}
	v, err := mv.Measure(3)
	if err != nil {
		t.Fatal(err)
	}
	if v.Mean >= p.Mean {
		t.Errorf("multibyte: mv %.0f >= plain %.0f", v.Mean, p.Mean)
	}
	// Multibyte mode costs more than single-byte mode overall.
	if err := mv.SetMode(false); err != nil {
		t.Fatal(err)
	}
	sb, err := mv.Measure(3)
	if err != nil {
		t.Fatal(err)
	}
	if sb.Mean >= v.Mean {
		t.Errorf("prescan free? single-byte %.0f >= multibyte %.0f", sb.Mean, v.Mean)
	}
}

func TestHighBitCorpusCountsMBChars(t *testing.T) {
	g, err := BuildGrep(Plain)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.LoadCorpus([]byte{0xC3, 0xA4, 'a', 'x', 'a', '\n'}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetMode(true); err != nil {
		t.Fatal(err)
	}
	got, err := g.Matches()
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("matches = %d, want 1", got)
	}
	mb, err := g.sys.Machine.ReadGlobal("mb_chars", 8)
	if err != nil {
		t.Fatal(err)
	}
	if mb != 2 {
		t.Errorf("mb_chars = %d, want 2 (prescan missed the UTF-8 bytes)", mb)
	}
}
