package machine

import (
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/link"
	"repro/internal/mem"
	"repro/internal/obj"
)

// buildPokeImage assembles
//
//	spin:
//	  movi r1, 100000
//	site: addi r1, -1      <- the 6-byte instruction tests poke over
//	  cmpi r1, 0
//	  jne site
//	  ret
//
// and exports "spin" and "site".
func buildPokeImage(t *testing.T) *link.Image {
	t.Helper()
	o := obj.New("poke.c")
	var a isa.Asm
	spin := a.Len()
	a.Movi(1, 100000)
	site := a.Len()
	a.AluI(isa.ADDI, 1, -1)
	a.CmpI(1, 0)
	a.Jcc(isa.NE, int32(site-(a.Len()+6)))
	a.Ret()
	o.Section(obj.SecText).Data = a.Bytes()
	o.AddSymbol(obj.Symbol{Name: "spin", Section: obj.SecText, Offset: uint64(spin), Global: true})
	o.AddSymbol(obj.Symbol{Name: "site", Section: obj.SecText, Offset: uint64(site), Size: 6, Global: true})
	img, err := link.Link(o)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestInterleaveRejectsZeroQuantum: a zero quantum used to make
// Interleave spin forever (the CPU counted as running but was never
// stepped); it must be rejected up front.
func TestInterleaveRejectsZeroQuantum(t *testing.T) {
	img := buildPokeImage(t)
	m, err := New(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StartCall(m.CPU, "spin"); err != nil {
		t.Fatal(err)
	}
	_, err = m.Interleave([]*cpu.CPU{m.CPU}, []int{0}, 1000)
	if err == nil || !strings.Contains(err.Error(), "quantum") {
		t.Fatalf("Interleave with zero quantum: err = %v, want quantum validation error", err)
	}
}

// TestInterleaveExactStepBound: a program needing exactly N steps must
// succeed with maxSteps = N and fail with maxSteps = N-1 (the bound
// used to be enforced one step late).
func TestInterleaveExactStepBound(t *testing.T) {
	img := buildPokeImage(t)
	m, err := New(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StartCall(m.CPU, "spin"); err != nil {
		t.Fatal(err)
	}
	need, err := m.Interleave([]*cpu.CPU{m.CPU}, []int{7}, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}

	m2, err := New(buildPokeImage(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.StartCall(m2.CPU, "spin"); err != nil {
		t.Fatal(err)
	}
	if got, err := m2.Interleave([]*cpu.CPU{m2.CPU}, []int{7}, need); err != nil {
		t.Fatalf("maxSteps = exact need %d: %v (executed %d)", need, err, got)
	}

	m3, err := New(buildPokeImage(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := m3.StartCall(m3.CPU, "spin"); err != nil {
		t.Fatal(err)
	}
	got, err := m3.Interleave([]*cpu.CPU{m3.CPU}, []int{7}, need-1)
	if err == nil {
		t.Fatalf("maxSteps = %d not enforced", need-1)
	}
	if got != need-1 {
		t.Fatalf("executed %d steps under a %d-step bound", got, need-1)
	}
}

// TestInterleaveStepHook: the hook fires at quantum boundaries with
// monotonic totals, and attaching it does not change execution.
func TestInterleaveStepHook(t *testing.T) {
	img := buildPokeImage(t)
	m, err := New(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StartCall(m.CPU, "spin"); err != nil {
		t.Fatal(err)
	}
	var fires int
	var lastTotal uint64
	m.StepHook = func(cpuIdx int, pc uint64, total uint64) {
		if cpuIdx != 0 {
			t.Errorf("hook cpu = %d, want 0", cpuIdx)
		}
		if total < lastTotal {
			t.Errorf("hook total went backwards: %d -> %d", lastTotal, total)
		}
		lastTotal = total
		fires++
	}
	total, err := m.Interleave([]*cpu.CPU{m.CPU}, []int{100}, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if fires == 0 {
		t.Fatal("StepHook never fired")
	}
	if lastTotal != total {
		t.Errorf("final hook total = %d, want %d", lastTotal, total)
	}
}

// TestAddCPUStackCollision: a mapping squatting where the next CPU
// stack goes must fail AddCPU with a descriptive error and must not
// leak the stack slot — after the squatter is unmapped, AddCPU places
// the same slot successfully.
func TestAddCPUStackCollision(t *testing.T) {
	img := buildPokeImage(t)
	m, err := New(img)
	if err != nil {
		t.Fatal(err)
	}
	span := (stackPages + 4) * mem.PageSize
	top := stackTop - span
	base := top - stackPages*mem.PageSize
	if err := m.Mem.Map(base, mem.PageSize, mem.RW); err != nil {
		t.Fatal(err)
	}
	_, err = m.AddCPU()
	if err == nil {
		t.Fatal("AddCPU over an existing mapping succeeded")
	}
	if !strings.Contains(err.Error(), "overlaps") || !strings.Contains(err.Error(), "stack for cpu 1") {
		t.Fatalf("AddCPU collision error not descriptive: %v", err)
	}
	if len(m.CPUs()) != 1 {
		t.Fatalf("failed AddCPU still registered a CPU: %d", len(m.CPUs()))
	}
	if err := m.Mem.Unmap(base, mem.PageSize); err != nil {
		t.Fatal(err)
	}
	c2, err := m.AddCPU()
	if err != nil {
		t.Fatalf("AddCPU after unmap: %v (slot leaked by the failed attempt?)", err)
	}
	if got := c2.Reg(isa.SP); got != top {
		t.Errorf("cpu 1 stack top = %#x, want %#x", got, top)
	}
}

// TestTextPokeProtocol drives a poke over a 6-byte instruction while a
// second CPU sits with its PC on the site: mid-window the bytes must
// be BRK + transitioning tail, the racing CPU must trap resumably in
// phases 1 and 2, and after completion it must execute the new
// instruction.
func TestTextPokeProtocol(t *testing.T) {
	img := buildPokeImage(t)
	m, err := New(img)
	if err != nil {
		t.Fatal(err)
	}
	site := m.MustSymbol("site")
	c := m.CPU
	if err := m.StartCall(c, "spin"); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(); err != nil { // movi; PC now at site, icache warm
		t.Fatal(err)
	}
	if c.PC() != site {
		t.Fatalf("pc = %#x, want site %#x", c.PC(), site)
	}

	var oldBytes [6]byte
	if err := m.Mem.Read(site, oldBytes[:]); err != nil {
		t.Fatal(err)
	}
	newBytes := isa.EncodeNop(6)

	var phases []int
	m.PokeHook = func(phase int, addr, n uint64) {
		phases = append(phases, phase)
		if addr != site || n != 6 {
			t.Errorf("phase %d addr/n = %#x/%d, want %#x/6", phase, addr, n, site)
		}
		var cur [6]byte
		if err := m.Mem.Read(site, cur[:]); err != nil {
			t.Fatal(err)
		}
		if phase < 3 && cur[0] != byte(isa.BRK) {
			t.Errorf("phase %d: first byte %#02x, want BRK", phase, cur[0])
		}
		if phase == 3 && cur != [6]byte(newBytes) {
			t.Errorf("phase 3: site = %x, want %x", cur, newBytes)
		}
		if phase < 3 {
			// The racing CPU must trap resumably, never decode a hybrid.
			err := c.Step()
			if tf := cpu.AsTrap(err); tf == nil || tf.PC != site {
				t.Fatalf("phase %d: racing step = %v, want trap at site", phase, err)
			}
			c.PauseSpin()
		}
	}
	if err := m.TextPoke(site, newBytes); err != nil {
		t.Fatal(err)
	}
	if len(phases) != 3 || phases[0] != 1 || phases[1] != 2 || phases[2] != 3 {
		t.Fatalf("phases = %v, want [1 2 3]", phases)
	}
	traps := c.Stats().Traps
	if traps != 2 {
		t.Errorf("Traps = %d, want 2", traps)
	}
	// Poke complete: the parked CPU re-steps and executes the new
	// 6-byte NOP whole.
	if err := c.Step(); err != nil {
		t.Fatalf("post-poke step: %v", err)
	}
	if c.PC() != site+6 {
		t.Errorf("post-poke pc = %#x, want %#x", c.PC(), site+6)
	}
}

// TestStopMachineHerdsCPUOutOfRange parks a CPU inside an avoid range
// and checks the rendezvous steps it to a safe point before running fn.
func TestStopMachineHerdsCPUOutOfRange(t *testing.T) {
	img := buildPokeImage(t)
	m, err := New(img)
	if err != nil {
		t.Fatal(err)
	}
	site := m.MustSymbol("site")
	c := m.CPU
	if err := m.StartCall(c, "spin"); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(); err != nil { // park at site
		t.Fatal(err)
	}
	avoid := []Range{{Addr: site, Len: 6}}
	ran := false
	latency, err := m.StopMachine(avoid, func() error {
		ran = true
		if pc := c.PC(); pc >= site && pc < site+6 {
			t.Errorf("fn ran with cpu pc %#x inside the avoid range", pc)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("fn did not run")
	}
	if latency == 0 {
		t.Error("rendezvous latency = 0 despite herding a CPU")
	}
}
