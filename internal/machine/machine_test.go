package machine

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/link"
	"repro/internal/mem"
	"repro/internal/obj"
)

// buildImage links a tiny program:
//
//	add2(a, b) { return a + b; }
//	counter: u64 global = 0
//	bump()   { counter++; return counter; }
//	hello()  { out 'h','i' to the console }
func buildImage(t *testing.T) *link.Image {
	t.Helper()
	o := obj.New("prog.c")
	var a isa.Asm

	add2 := a.Len()
	a.Alu(isa.ADD, 0, 1)
	a.Ret()

	bump := a.Len()
	a.Movi(1, 0) // &counter (reloc)
	bumpMovi := bump
	a.Ld(0, 1, 8, 0)
	a.AluI(isa.ADDI, 0, 1)
	a.St(1, 0, 8, 0)
	a.Ret()

	hello := a.Len()
	a.Movi(0, 'h')
	a.OutB(ConsolePort, 0)
	a.Movi(0, 'i')
	a.OutB(ConsolePort, 0)
	a.Ret()

	o.Section(obj.SecText).Data = a.Bytes()
	bss := o.Section(obj.SecBSS)
	bss.Size = 8

	o.AddSymbol(obj.Symbol{Name: "add2", Section: obj.SecText, Offset: uint64(add2), Global: true})
	o.AddSymbol(obj.Symbol{Name: "bump", Section: obj.SecText, Offset: uint64(bump), Global: true})
	o.AddSymbol(obj.Symbol{Name: "hello", Section: obj.SecText, Offset: uint64(hello), Global: true})
	o.AddSymbol(obj.Symbol{Name: "counter", Section: obj.SecBSS, Offset: 0, Size: 8, Global: true})
	o.AddReloc(obj.Reloc{Section: obj.SecText, Offset: uint64(bumpMovi) + 2, Type: obj.RelocAbs64, Symbol: "counter"})

	img, err := link.Link(o)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestCallWithArguments(t *testing.T) {
	m, err := New(buildImage(t))
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.CallNamed("add2", 30, 12)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("add2(30, 12) = %d", got)
	}
}

func TestCallsComposeAndGlobalsPersist(t *testing.T) {
	m, err := New(buildImage(t))
	if err != nil {
		t.Fatal(err)
	}
	for want := uint64(1); want <= 3; want++ {
		got, err := m.CallNamed("bump")
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("bump() = %d, want %d", got, want)
		}
	}
	v, err := m.ReadGlobal("counter", 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Errorf("counter = %d, want 3", v)
	}
	if err := m.WriteGlobal("counter", 8, 100); err != nil {
		t.Fatal(err)
	}
	got, err := m.CallNamed("bump")
	if err != nil {
		t.Fatal(err)
	}
	if got != 101 {
		t.Errorf("bump after WriteGlobal = %d, want 101", got)
	}
}

func TestConsoleCapture(t *testing.T) {
	m, err := New(buildImage(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CallNamed("hello"); err != nil {
		t.Fatal(err)
	}
	if string(m.Console()) != "hi" {
		t.Errorf("console = %q", m.Console())
	}
	m.ResetConsole()
	if len(m.Console()) != 0 {
		t.Error("console not reset")
	}
}

func TestTextSegmentIsReadExec(t *testing.T) {
	m, err := New(buildImage(t))
	if err != nil {
		t.Fatal(err)
	}
	addr := m.MustSymbol("add2")
	prot, ok := m.Mem.ProtOf(addr)
	if !ok || prot != mem.RX {
		t.Errorf("text prot = %v, %v; want r-x", prot, ok)
	}
	// A store into text must fault.
	if err := m.Mem.Write(addr, []byte{0}); err == nil {
		t.Error("write to text segment succeeded")
	}
}

func TestUndefinedSymbolErrors(t *testing.T) {
	m, err := New(buildImage(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CallNamed("nope"); err == nil || !strings.Contains(err.Error(), "undefined symbol") {
		t.Errorf("err = %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSymbol on missing symbol did not panic")
		}
	}()
	m.MustSymbol("nope")
}

func TestTooManyArguments(t *testing.T) {
	m, err := New(buildImage(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call(m.MustSymbol("add2"), 1, 2, 3, 4, 5, 6, 7); err == nil {
		t.Error("7-argument call succeeded")
	}
}

func TestWithWXEnforced(t *testing.T) {
	m, err := New(buildImage(t), WithWX())
	if err != nil {
		t.Fatal(err)
	}
	addr := m.MustSymbol("add2")
	if err := m.Mem.Protect(addr, 1, mem.RWX); err == nil {
		t.Error("RWX protect allowed under W^X")
	}
}

func TestStackBalancedAcrossCalls(t *testing.T) {
	m, err := New(buildImage(t))
	if err != nil {
		t.Fatal(err)
	}
	sp0 := m.CPU.Reg(isa.SP)
	for i := 0; i < 5; i++ {
		if _, err := m.CallNamed("add2", 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if m.CPU.Reg(isa.SP) != sp0 {
		t.Errorf("sp drifted: %#x -> %#x", sp0, m.CPU.Reg(isa.SP))
	}
}

func TestMaxStepsGuards(t *testing.T) {
	// A function that never returns must hit MaxSteps.
	o := obj.New("loop.c")
	var a isa.Asm
	a.Jmp(-5)
	o.Section(obj.SecText).Data = a.Bytes()
	o.AddSymbol(obj.Symbol{Name: "spin", Section: obj.SecText, Offset: 0, Global: true})
	img, err := link.Link(o)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(img)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxSteps = 1000
	if _, err := m.CallNamed("spin"); err == nil {
		t.Error("infinite loop returned")
	}
}
