package machine

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
)

// TestAddCPUPropagatesSuperblocks: late-added hardware threads must
// inherit the primary CPU's superblock setting, exactly as they
// inherit its decode-cache setting — an SMP machine runs one dispatch
// strategy, not a mix.
func TestAddCPUPropagatesSuperblocks(t *testing.T) {
	for _, on := range []bool{true, false} {
		m, err := New(buildPokeImage(t))
		if err != nil {
			t.Fatal(err)
		}
		m.CPU.SetSuperblocks(on)
		c, err := m.AddCPU()
		if err != nil {
			t.Fatal(err)
		}
		if c.SuperblocksEnabled() != on {
			t.Errorf("AddCPU with primary superblocks=%v: new CPU has %v",
				on, c.SuperblocksEnabled())
		}
	}
}

// TestTextPokeInvalidatesSuperblocks drives the PR 5 cross-modifying
// poke protocol over text that every CPU holds superblocks for: the
// poke's phase flushes must kill the blocks on all CPUs (counted in
// BlockInvalidates) and the next execution must run the patched bytes
// — never a stale block.
func TestTextPokeInvalidatesSuperblocks(t *testing.T) {
	m, err := New(buildPokeImage(t))
	if err != nil {
		t.Fatal(err)
	}
	m.CPU.SetSuperblocks(true)
	extra, err := m.AddCPU()
	if err != nil {
		t.Fatal(err)
	}

	// Warm both CPUs to block steady state on the spin loop.
	for i := 0; i < 2; i++ {
		if _, err := m.Call(m.MustSymbol("spin")); err != nil {
			t.Fatal(err)
		}
		if err := m.StartCall(extra, "spin"); err != nil {
			t.Fatal(err)
		}
		if _, err := extra.Run(1 << 40); err != nil {
			t.Fatal(err)
		}
	}
	for i, c := range m.CPUs() {
		if c.Stats().BlockBuilds == 0 {
			t.Fatalf("cpu %d built no superblocks on the spin loop", i)
		}
	}

	// Poke the 6-byte decrement from -1 to -2: the count starts even,
	// so the loop still terminates, in half the iterations — stale
	// block execution is observable as instruction count.
	site := m.MustSymbol("site")
	var a isa.Asm
	a.AluI(isa.ADDI, 1, -2)
	if err := m.TextPoke(site, a.Bytes()); err != nil {
		t.Fatal(err)
	}
	for i, c := range m.CPUs() {
		if c.Stats().BlockInvalidates == 0 {
			t.Errorf("cpu %d: TextPoke invalidated no superblocks", i)
		}
	}

	// The loop body is 100000 iterations of -1; patched to -2 it takes
	// half the iterations. Count instructions to observe the patch.
	before := m.CPU.Stats().Instructions
	if _, err := m.Call(m.MustSymbol("spin")); err != nil {
		t.Fatal(err)
	}
	ran := m.CPU.Stats().Instructions - before
	// movi + 50000*(addi,cmpi,jcc) + ret ≈ 150002; stale -1 would run
	// ~300002. Split the difference.
	if ran > 200000 {
		t.Errorf("post-poke spin retired %d instructions; stale pre-poke block still executing", ran)
	}
}

// TestInterleaveSuperblockInvariance pins SMP interleaving semantics:
// Interleave single-steps at instruction granularity regardless of the
// superblock knob, so quantum boundaries, step budgets and final state
// are identical with superblocks on and off.
func TestInterleaveSuperblockInvariance(t *testing.T) {
	runOnce := func(on bool) (uint64, uint64, cpu.Stats) {
		m, err := New(buildPokeImage(t))
		if err != nil {
			t.Fatal(err)
		}
		m.CPU.SetSuperblocks(on)
		extra, err := m.AddCPU()
		if err != nil {
			t.Fatal(err)
		}
		if err := m.StartCall(m.CPU, "spin"); err != nil {
			t.Fatal(err)
		}
		if err := m.StartCall(extra, "spin"); err != nil {
			t.Fatal(err)
		}
		steps, err := m.Interleave(m.CPUs(), []int{7, 3}, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		stats := m.TotalStats()
		stats.DecodeHits, stats.DecodeMisses = 0, 0
		stats.BlockBuilds, stats.BlockHits, stats.BlockInsts, stats.BlockInvalidates = 0, 0, 0, 0
		return steps, m.CPU.Cycles() + extra.Cycles(), stats
	}
	onSteps, onCycles, onStats := runOnce(true)
	offSteps, offCycles, offStats := runOnce(false)
	if onSteps != offSteps || onCycles != offCycles || onStats != offStats {
		t.Errorf("Interleave diverges with superblocks on/off:\non:  steps %d cycles %d %+v\noff: steps %d cycles %d %+v",
			onSteps, onCycles, onStats, offSteps, offCycles, offStats)
	}
}
