package machine

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/link"
	"repro/internal/obj"
)

// buildSMPImage assembles:
//
//	counter: u64
//	spin:    u64 lock word
//	worker(n): for i in 0..n { lock(spin); counter++; unlock } using XCHG
//	racer(n):  for i in 0..n { counter++ } without a lock
func buildSMPImage(t *testing.T) *link.Image {
	t.Helper()
	o := obj.New("smp.c")
	var a isa.Asm

	reloc := func(at int, sym string) {
		o.AddReloc(obj.Reloc{Section: obj.SecText, Offset: uint64(at) + 2,
			Type: obj.RelocAbs64, Symbol: sym})
	}

	// worker(n in r0)
	worker := a.Len()
	a.Mov(1, 0) // r1 = n
	wLoop := a.Len()
	a.CmpI(1, 0)
	wDoneJcc := a.Len()
	a.Jcc(isa.EQ, 0) // -> done (patched below)
	// lock: r2 = &spin; spin: r3 = 1; xchg [r2], r3; if r3 != 0 retry
	lockAt := a.Len()
	reloc(lockAt, "spin")
	a.Movi(2, 0)
	retry := a.Len()
	a.Movi(3, 1)
	a.Xchg(2, 3)
	a.CmpI(3, 0)
	a.Jcc(isa.NE, int32(retry-(a.Len()+6)))
	// counter++ (read-modify-write)
	cAt := a.Len()
	reloc(cAt, "counter")
	a.Movi(4, 0)
	a.Ld(5, 4, 8, 0)
	a.AluI(isa.ADDI, 5, 1)
	a.St(4, 5, 8, 0)
	// unlock: [r2] = 0
	a.Movi(3, 0)
	a.St(2, 3, 8, 0)
	a.AluI(isa.SUBI, 1, 1)
	a.Jmp(int32(wLoop - (a.Len() + 5)))
	wDone := a.Len()
	a.Ret()
	// Patch the loop-exit branch.
	code := a.Bytes()
	relOff := wDone - (wDoneJcc + 6)
	for i := 0; i < 4; i++ {
		code[wDoneJcc+2+i] = byte(uint32(relOff) >> (8 * i))
	}

	// racer(n in r0): unlocked RMW increments.
	racer := a.Len()
	a.Mov(1, 0)
	rLoop := a.Len()
	a.CmpI(1, 0)
	rDoneJcc := a.Len()
	a.Jcc(isa.EQ, 0)
	rcAt := a.Len()
	reloc(rcAt, "counter")
	a.Movi(4, 0)
	a.Ld(5, 4, 8, 0)
	a.AluI(isa.ADDI, 5, 1)
	a.St(4, 5, 8, 0)
	a.AluI(isa.SUBI, 1, 1)
	a.Jmp(int32(rLoop - (a.Len() + 5)))
	rDone := a.Len()
	a.Ret()
	code = a.Bytes()
	relOff = rDone - (rDoneJcc + 6)
	for i := 0; i < 4; i++ {
		code[rDoneJcc+2+i] = byte(uint32(relOff) >> (8 * i))
	}

	o.Section(obj.SecText).Data = a.Bytes()
	bss := o.Section(obj.SecBSS)
	bss.Size = 16
	o.AddSymbol(obj.Symbol{Name: "worker", Section: obj.SecText, Offset: uint64(worker), Global: true})
	o.AddSymbol(obj.Symbol{Name: "racer", Section: obj.SecText, Offset: uint64(racer), Global: true})
	o.AddSymbol(obj.Symbol{Name: "counter", Section: obj.SecBSS, Offset: 0, Size: 8, Global: true})
	o.AddSymbol(obj.Symbol{Name: "spin", Section: obj.SecBSS, Offset: 8, Size: 8, Global: true})
	img, err := link.Link(o)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestTwoCPUsLockedIncrements(t *testing.T) {
	img := buildSMPImage(t)
	m, err := New(img)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := m.AddCPU()
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	if err := m.StartCall(m.CPU, "worker", n); err != nil {
		t.Fatal(err)
	}
	if err := m.StartCall(c2, "worker", n); err != nil {
		t.Fatal(err)
	}
	steps, err := m.Interleave([]*cpu.CPU{m.CPU, c2}, []int{3, 5}, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if steps == 0 {
		t.Fatal("no instructions executed")
	}
	v, err := m.ReadGlobal("counter", 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2*n {
		t.Errorf("counter = %d, want %d", v, 2*n)
	}
	spin, err := m.ReadGlobal("spin", 8)
	if err != nil {
		t.Fatal(err)
	}
	if spin != 0 {
		t.Error("lock still held")
	}
}

func TestTwoCPUsUnlockedRaceLosesUpdates(t *testing.T) {
	img := buildSMPImage(t)
	m, err := New(img)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := m.AddCPU()
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	if err := m.StartCall(m.CPU, "racer", n); err != nil {
		t.Fatal(err)
	}
	if err := m.StartCall(c2, "racer", n); err != nil {
		t.Fatal(err)
	}
	// Single-instruction interleaving tears the read-modify-write.
	if _, err := m.Interleave([]*cpu.CPU{m.CPU, c2}, []int{1, 1}, 10_000_000); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadGlobal("counter", 8)
	if err != nil {
		t.Fatal(err)
	}
	if v >= 2*n {
		t.Errorf("counter = %d; unlocked racers should lose updates", v)
	}
	if v < n {
		t.Errorf("counter = %d; both racers together must manage at least n", v)
	}
}

func TestAddCPUStacksAreDisjoint(t *testing.T) {
	img := buildSMPImage(t)
	m, err := New(img)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := m.AddCPU()
	if err != nil {
		t.Fatal(err)
	}
	c3, err := m.AddCPU()
	if err != nil {
		t.Fatal(err)
	}
	sps := []uint64{m.CPU.Reg(isa.SP), c2.Reg(isa.SP), c3.Reg(isa.SP)}
	for i := 0; i < len(sps); i++ {
		for j := i + 1; j < len(sps); j++ {
			d := int64(sps[i]) - int64(sps[j])
			if d < 0 {
				d = -d
			}
			if d < 4096 {
				t.Errorf("stacks %d and %d too close: %#x vs %#x", i, j, sps[i], sps[j])
			}
		}
	}
}

func TestInterleaveStepLimit(t *testing.T) {
	img := buildSMPImage(t)
	m, err := New(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StartCall(m.CPU, "worker", 1<<40); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Interleave([]*cpu.CPU{m.CPU}, []int{10}, 1000); err == nil {
		t.Error("step limit not enforced")
	}
}

func TestAddCPUInheritsDecodeCacheSetting(t *testing.T) {
	img := buildSMPImage(t)
	m, err := New(img)
	if err != nil {
		t.Fatal(err)
	}
	m.CPU.SetDecodeCache(false)
	c2, err := m.AddCPU()
	if err != nil {
		t.Fatal(err)
	}
	if c2.DecodeCacheEnabled() {
		t.Error("AddCPU ignored the boot CPU's disabled decode cache")
	}
	m.CPU.SetDecodeCache(true)
	c3, err := m.AddCPU()
	if err != nil {
		t.Fatal(err)
	}
	if !c3.DecodeCacheEnabled() {
		t.Error("AddCPU ignored the boot CPU's enabled decode cache")
	}
}
