package machine

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// AddCPU attaches another hardware thread to the machine. The new CPU
// shares the memory (and therefore sees all binary patching) but has
// its own registers, branch predictors and instruction cache — and,
// layered on the icache, its own private predecoded-instruction cache,
// so one thread's flush never invalidates another's decodes — and its
// own stack. Instruction-level interleaving of CPUs is up to the
// caller (see Interleave); each instruction executes atomically, so
// XCHG retains its locked semantics across CPUs.
func (m *Machine) AddCPU() (*cpu.CPU, error) {
	// Compute the slot before claiming it: a failed Map must not leak
	// the slot index (which would leave a permanent hole in the stack
	// layout and desynchronize stackTops from cpus).
	slot := uint64(m.extraCPUs + 1)
	span := (stackPages + 4) * mem.PageSize
	if slot*span+stackPages*mem.PageSize > stackTop {
		return nil, fmt.Errorf("machine: no address space below %#x for cpu %d's stack", stackTop, slot)
	}
	top := stackTop - slot*span
	base := top - stackPages*mem.PageSize
	if err := m.Mem.Map(base, stackPages*mem.PageSize, mem.RW); err != nil {
		// Typically the stack marched down into an image segment or heap
		// mapping; Map names the exact colliding page.
		return nil, fmt.Errorf("machine: stack for cpu %d at [%#x, %#x): %w", slot, base, top, err)
	}
	m.extraCPUs++
	m.stackTops = append(m.stackTops, top)
	c := cpu.New(m.Mem, m.CPU.Config())
	c.SetDecodeCache(m.CPU.DecodeCacheEnabled())
	c.SetSuperblocks(m.CPU.SuperblocksEnabled())
	c.SetReg(isa.SP, top)
	c.OutB = m.CPU.OutB
	// The Config copy carries the primary CPU's tracer, whose stream is
	// stamped from the primary's clock; give this CPU a stream of its
	// own, or none.
	if m.TraceCollector != nil {
		c.SetTracer(m.TraceCollector.NewStream(fmt.Sprintf("cpu%d", m.extraCPUs), c.Cycles))
	} else {
		c.SetTracer(nil)
	}
	// A machine-wide injector covers late-added threads too, under the
	// hardware-thread index the fault plan keys on.
	c.SetInjector(m.injector, len(m.cpus))
	m.cpus = append(m.cpus, c)
	return c, nil
}

// StartCall prepares a CPU to execute the named function with the
// given arguments, without running it: the PC points at the function
// and the return address is the halt stub. Drive it with Step or
// Interleave.
func (m *Machine) StartCall(c *cpu.CPU, name string, args ...uint64) error {
	addr, err := m.Symbol(name)
	if err != nil {
		return err
	}
	if len(args) > 6 {
		return fmt.Errorf("machine: at most 6 arguments, got %d", len(args))
	}
	for i, v := range args {
		c.SetReg(isa.Reg(i), v)
	}
	sp := c.Reg(isa.SP) - 8
	if err := m.Mem.WriteUint(sp, 8, m.Image.HaltAddr); err != nil {
		return err
	}
	c.SetReg(isa.SP, sp)
	c.SetPC(addr)
	return nil
}

// Interleave steps the given CPUs according to quanta: CPU i executes
// quanta[i] instructions per round, round-robin, until every CPU has
// halted. It returns the total number of instructions executed.
// Uneven quanta explore different interleavings deterministically.
// Every quantum must be >= 1: a zero quantum would keep a non-halted
// CPU "running" without ever stepping it, spinning the round-robin
// loop forever.
//
// If m.StepHook is non-nil it is invoked at each quantum boundary —
// a deterministic instruction-boundary point at which concurrency
// harnesses inject runtime operations. A nil hook costs nothing.
func (m *Machine) Interleave(cpus []*cpu.CPU, quanta []int, maxSteps uint64) (uint64, error) {
	if len(cpus) != len(quanta) {
		return 0, fmt.Errorf("machine: %d cpus but %d quanta", len(cpus), len(quanta))
	}
	for i, q := range quanta {
		if q < 1 {
			return 0, fmt.Errorf("machine: quantum %d for cpu %d (must be >= 1)", q, i)
		}
	}
	var total uint64
	for {
		anyRunning := false
		for i, c := range cpus {
			if c.Halted() {
				continue
			}
			anyRunning = true
			for q := 0; q < quanta[i] && !c.Halted(); q++ {
				// Exact bound: executing instruction maxSteps+1 is the
				// violation, so refuse before stepping, not one step after.
				if total == maxSteps {
					return total, fmt.Errorf("machine: interleave exceeded %d steps", maxSteps)
				}
				if err := c.Step(); err != nil {
					return total, fmt.Errorf("machine: cpu %d: %w", i, err)
				}
				total++
			}
			if m.StepHook != nil {
				m.StepHook(i, c.PC(), total)
			}
		}
		if !anyRunning {
			return total, nil
		}
	}
}
