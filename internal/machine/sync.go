package machine

import (
	"errors"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
)

// Range is a half-open address range [Addr, Addr+Len) that a quiescing
// CPU must not be stopped inside — typically the patchable windows the
// runtime library is about to rewrite.
type Range struct {
	Addr, Len uint64
}

func (r Range) contains(pc uint64) bool {
	return pc >= r.Addr && pc < r.Addr+r.Len
}

// stopMachineMaxSteps bounds how many instructions one CPU may be
// stepped while being herded out of the avoid ranges. Patch windows
// are a handful of bytes, so a few steps normally suffice; the bound
// exists only to turn a wedged CPU into an error instead of a hang.
const stopMachineMaxSteps = 4096

// StopMachine is the cooperative stop_machine rendezvous: every
// non-halted CPU is stepped to an instruction boundary outside all
// avoid ranges, then fn runs with the whole machine quiescent — no
// CPU can be mid-fetch of any byte fn rewrites. It returns the total
// rendezvous latency in simulated cycles (the cycles burned stepping
// CPUs to their safe points) along with fn's error.
//
// Injected transient faults (spurious fetch faults) during the
// rendezvous are retried; any other execution error aborts.
func (m *Machine) StopMachine(avoid []Range, fn func() error) (uint64, error) {
	inAvoid := func(pc uint64) bool {
		for _, r := range avoid {
			if r.contains(pc) {
				return true
			}
		}
		return false
	}
	var latency uint64
	for i, c := range m.cpus {
		if c.Halted() {
			continue
		}
		start := c.Cycles()
		for tries := 0; inAvoid(c.PC()); tries++ {
			if tries >= stopMachineMaxSteps {
				return latency, fmt.Errorf("machine: cpu %d failed to reach a safe point after %d steps (pc=%#x)",
					i, stopMachineMaxSteps, c.PC())
			}
			if err := c.Step(); err != nil {
				if isTransientFault(err) {
					continue // spurious fetch fault: nothing retired, retry
				}
				return latency, fmt.Errorf("machine: cpu %d while quiescing: %w", i, err)
			}
			if c.Halted() {
				break
			}
		}
		latency += c.Cycles() - start
	}
	return latency, fn()
}

// isTransientFault reports whether err's chain carries an injected
// fault that models a transient condition (the faultinject package
// marks those via a FaultTransient method; machine must not import it).
func isTransientFault(err error) bool {
	var tr interface{ FaultTransient() bool }
	return errors.As(err, &tr) && tr.FaultTransient()
}

// PokePhaser is implemented by fault injectors that want to observe
// text-poke protocol phases — e.g. to open a "drop the flush only
// inside the breakpoint window" injection window.
type PokePhaser interface {
	PokePhase(phase int, addr, n uint64)
}

// NotePokePhase announces a completed text-poke phase to the PokeHook
// and to a PokePhaser fault injector. Phases: 1 = BRK planted over the
// first byte, 2 = tail bytes written, 3 = first byte restored (poke
// complete). Core's journaled poke path calls it so harness hooks see
// the same phase stream whether the poke came from TextPoke or from a
// transactional commit.
func (m *Machine) NotePokePhase(phase int, addr, n uint64) {
	if m.PokeHook != nil {
		m.PokeHook(phase, addr, n)
	}
	if p, ok := m.injector.(PokePhaser); ok {
		p.PokePhase(phase, addr, n)
	}
}

// TextPoke rewrites [addr, addr+len(data)) in live text using the
// breakpoint protocol (the kernel's text_poke_bp):
//
//  1. write BRK over the first byte, flush everywhere;
//  2. write the tail bytes, flush;
//  3. restore the first byte with its new value, flush.
//
// The first byte is the linchpin: until phase 3 lands, any CPU that
// fetches the site either still sees the complete old instruction (its
// icache snapshot predates phase 1) or sees BRK and traps resumably —
// never a spliced old/new hybrid, because the old first byte is gone
// before any new tail byte becomes visible. A trapping CPU spins
// (cpu.PauseSpin) until phase 3, then re-steps the new instruction.
//
// Single-byte pokes are inherently atomic and skip the protocol.
func (m *Machine) TextPoke(addr uint64, data []byte) error {
	n := uint64(len(data))
	if n == 0 {
		return nil
	}
	if n == 1 {
		if err := m.Mem.WriteForce(addr, data); err != nil {
			return err
		}
		m.FlushICacheAll(addr, 1)
		return nil
	}
	brk := [1]byte{byte(isa.BRK)}
	if err := m.Mem.WriteForce(addr, brk[:]); err != nil {
		return err
	}
	m.FlushICacheAll(addr, 1)
	m.NotePokePhase(1, addr, n)

	if err := m.Mem.WriteForce(addr+1, data[1:]); err != nil {
		return err
	}
	m.FlushICacheAll(addr+1, n-1)
	m.NotePokePhase(2, addr, n)

	if err := m.Mem.WriteForce(addr, data[:1]); err != nil {
		return err
	}
	m.FlushICacheAll(addr, 1)
	m.NotePokePhase(3, addr, n)
	return nil
}

// liveStackScanWords bounds the per-CPU stack walk of LiveCodeAddrs.
const liveStackScanWords = 8192

// LiveCodeAddrs returns every code address currently live on some
// non-halted CPU: each PC plus the conservative return-address scan of
// each stack (see cpu.StackReturnAddresses). The runtime library's
// activeness check consults it before rebinding a function whose old
// variant may still be executing or awaiting return.
//
// The second result reports whether the list is complete. When a stack
// is deep enough that the liveStackScanWords bound cut a scan short,
// it is false and callers must treat *every* function as potentially
// active rather than trusting the truncated list.
func (m *Machine) LiveCodeAddrs() ([]uint64, bool) {
	var out []uint64
	complete := true
	for i, c := range m.cpus {
		if c.Halted() {
			continue
		}
		out = append(out, c.PC())
		ras, ok := c.StackReturnAddresses(m.stackTops[i], m.Image.HaltAddr, liveStackScanWords)
		if !ok {
			complete = false
		}
		out = append(out, ras...)
	}
	return out, complete
}

// OSRCPU pairs one non-halted CPU with the stack geometry an on-stack
// replacement needs to locate and rewrite its frames.
type OSRCPU struct {
	CPU      *cpu.CPU
	StackTop uint64
	HaltAddr uint64
	Index    int
}

// OSRCPUs returns every non-halted CPU with its stack bounds — the
// frame-transfer engine in core iterates these during a commit
// rendezvous.
func (m *Machine) OSRCPUs() []OSRCPU {
	var out []OSRCPU
	for i, c := range m.cpus {
		if c.Halted() {
			continue
		}
		out = append(out, OSRCPU{CPU: c, StackTop: m.stackTops[i], HaltAddr: m.Image.HaltAddr, Index: i})
	}
	return out
}
