// Package machine assembles memory, CPU and devices into a bootable
// simulated computer and loads linked images into it.
package machine

import (
	"bytes"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/link"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Stack layout.
const (
	stackTop   = uint64(0x7fff_f000)
	stackPages = uint64(64)
)

// ConsolePort is the device port whose byte writes are captured in the
// machine's console buffer.
const ConsolePort = 1

// Machine is a loaded, runnable simulated computer.
type Machine struct {
	Mem   *mem.Memory
	CPU   *cpu.CPU
	Image *link.Image

	console bytes.Buffer

	// MaxSteps bounds every Call; it guards against runaway guest
	// code. The default is 2^40.
	MaxSteps uint64

	// TraceCollector, when non-nil (set by core.AttachTracer), gives
	// each CPU added with AddCPU its own cycle-stamped event stream.
	TraceCollector *trace.Collector

	// StepHook, when non-nil, is invoked by Interleave at every quantum
	// boundary with the CPU index just scheduled, its PC, and the total
	// instructions executed so far. Concurrency harnesses use it to land
	// runtime operations at deterministic interleaving points. Nil (the
	// default) leaves Interleave's behavior and cost unchanged.
	StepHook func(cpuIdx int, pc uint64, total uint64)

	// PokeHook, when non-nil, observes each completed phase of a
	// TextPoke (see NotePokePhase). Chaos harnesses use it to interleave
	// victim-CPU steps between protocol phases.
	PokeHook func(phase int, addr, n uint64)

	// Observer, when non-nil, receives machine-level observability
	// events — today one KindFlushICache per FlushICacheAll broadcast
	// (A = length, B = hardware threads invalidated). Unlike the
	// per-CPU collector streams it rides no interpreter hot path, so
	// the flight recorder and watchdog attach here (core.
	// AttachFlightRecorder / AttachWatchdog) without disturbing the
	// unobserved fast path.
	Observer trace.Tracer

	extraCPUs int        // secondary hardware threads added via AddCPU
	cpus      []*cpu.CPU // every hardware thread, primary first
	stackTops []uint64   // per-CPU stack top, parallel to cpus
	injector  Injector   // propagated to CPUs added after SetInjector
}

// Injector is the union of the memory-side and CPU-side fault
// injection hooks (internal/faultinject.Plan implements it).
type Injector interface {
	mem.Injector
	cpu.Injector
}

// SetInjector wires a fault injector into the memory system and every
// hardware thread (present and future: AddCPU propagates it). Passing
// nil detaches injection everywhere, restoring the hook-free fast
// paths.
func (m *Machine) SetInjector(inj Injector) {
	m.injector = inj
	if inj == nil {
		m.Mem.Inject = nil
		for i, c := range m.cpus {
			c.SetInjector(nil, i)
		}
		return
	}
	m.Mem.Inject = inj
	for i, c := range m.cpus {
		c.SetInjector(inj, i)
	}
}

// Injector returns the installed fault injector, if any.
func (m *Machine) Injector() Injector { return m.injector }

// FlushICacheAll invalidates [addr, addr+n) in the instruction cache
// of every hardware thread — the shootdown IPI broadcast a real SMP
// patching runtime performs. With fault injection attached, one CPU's
// invalidation may be dropped; ICacheStale detects the survivor.
func (m *Machine) FlushICacheAll(addr, n uint64) {
	for _, c := range m.cpus {
		c.FlushICache(addr, n)
	}
	if m.Observer != nil {
		m.Observer.Emit(trace.KindFlushICache, addr, n, uint64(len(m.cpus)))
	}
}

// ICacheStale reports whether any hardware thread still caches a
// pre-patch snapshot of [addr, addr+n) — the check a
// shootdown-acknowledge protocol performs before declaring a text
// patch globally visible.
func (m *Machine) ICacheStale(addr, n uint64) bool {
	for _, c := range m.cpus {
		if c.ICacheStale(addr, n) {
			return true
		}
	}
	return false
}

// Option configures machine construction.
type Option func(*options)

type options struct {
	cfg cpu.Config
	wx  bool
}

// WithConfig selects a CPU cost model (default cpu.DefaultConfig).
func WithConfig(cfg cpu.Config) Option {
	return func(o *options) { o.cfg = cfg }
}

// WithWX enables the strict W^X memory policy, under which no page may
// be writable and executable at once.
func WithWX() Option {
	return func(o *options) { o.wx = true }
}

// New creates a machine and loads img into it.
func New(img *link.Image, opts ...Option) (*Machine, error) {
	o := options{cfg: cpu.DefaultConfig()}
	for _, f := range opts {
		f(&o)
	}
	m := mem.New()
	m.WXExclusive = o.wx

	for _, seg := range img.Segments {
		length := mem.PageAlignUp(uint64(len(seg.Data)))
		if length == 0 {
			continue
		}
		if err := m.Map(seg.Addr, length, mem.RW); err != nil {
			return nil, fmt.Errorf("machine: mapping segment at %#x: %w", seg.Addr, err)
		}
		if err := m.Write(seg.Addr, seg.Data); err != nil {
			return nil, err
		}
		if err := m.Protect(seg.Addr, length, seg.Prot); err != nil {
			return nil, fmt.Errorf("machine: protecting segment at %#x: %w", seg.Addr, err)
		}
	}
	if err := m.Map(stackTop-stackPages*mem.PageSize, stackPages*mem.PageSize, mem.RW); err != nil {
		return nil, err
	}

	c := cpu.New(m, o.cfg)
	c.SetReg(isa.SP, stackTop)
	mach := &Machine{Mem: m, CPU: c, Image: img, MaxSteps: 1 << 40,
		cpus: []*cpu.CPU{c}, stackTops: []uint64{stackTop}}
	c.OutB = func(port uint8, b byte) {
		if port == ConsolePort {
			mach.console.WriteByte(b)
		}
	}
	return mach, nil
}

// CPUs returns every hardware thread of the machine, the primary CPU
// first, then AddCPU threads in creation order. Telemetry readers
// (core.AttachMetrics) iterate it at scrape time so late-added SMP
// threads are aggregated without re-registration.
func (m *Machine) CPUs() []*cpu.CPU { return m.cpus }

// TotalStats sums the execution statistics of every hardware thread.
func (m *Machine) TotalStats() cpu.Stats {
	var total cpu.Stats
	for _, c := range m.cpus {
		total = total.Add(c.Stats())
	}
	return total
}

// Console returns everything the program has written to the console
// port so far.
func (m *Machine) Console() []byte { return m.console.Bytes() }

// ResetConsole clears the console buffer.
func (m *Machine) ResetConsole() { m.console.Reset() }

// RestoreConsole replaces the console buffer's contents — the snapshot
// layer uses it so a restored program's console output continues from
// where the exported run left off.
func (m *Machine) RestoreConsole(data []byte) {
	m.console.Reset()
	m.console.Write(data)
}

// Symbol resolves a symbol address, failing loudly for typos.
func (m *Machine) Symbol(name string) (uint64, error) {
	s, ok := m.Image.Symbols[name]
	if !ok {
		return 0, fmt.Errorf("machine: undefined symbol %q", name)
	}
	return s.Addr, nil
}

// MustSymbol is Symbol for symbols that are known to exist.
func (m *Machine) MustSymbol(name string) uint64 {
	a, err := m.Symbol(name)
	if err != nil {
		panic(err)
	}
	return a
}

// Call invokes the function at addr with up to 6 integer arguments in
// r0..r5 and runs until it returns (to the halt stub). It returns r0.
//
// The stack pointer is preserved across calls, so successive Calls
// compose like successive calls from a C main.
func (m *Machine) Call(addr uint64, args ...uint64) (uint64, error) {
	if len(args) > 6 {
		return 0, fmt.Errorf("machine: at most 6 arguments, got %d", len(args))
	}
	c := m.CPU
	for i, v := range args {
		c.SetReg(isa.Reg(i), v)
	}
	// Simulate CALL: push the halt stub as the return address.
	sp := c.Reg(isa.SP) - 8
	if err := m.Mem.WriteUint(sp, 8, m.Image.HaltAddr); err != nil {
		return 0, err
	}
	c.SetReg(isa.SP, sp)
	c.SetPC(addr)
	if _, err := c.Run(m.MaxSteps); err != nil {
		return 0, err
	}
	return c.Reg(0), nil
}

// CallNamed is Call with symbol resolution.
func (m *Machine) CallNamed(name string, args ...uint64) (uint64, error) {
	addr, err := m.Symbol(name)
	if err != nil {
		return 0, err
	}
	return m.Call(addr, args...)
}

// ReadGlobal reads size bytes of the global at the symbol as a
// little-endian unsigned integer.
func (m *Machine) ReadGlobal(name string, size int) (uint64, error) {
	addr, err := m.Symbol(name)
	if err != nil {
		return 0, err
	}
	return m.Mem.ReadUint(addr, size)
}

// WriteGlobal writes a little-endian unsigned integer of size bytes to
// the global at the symbol.
func (m *Machine) WriteGlobal(name string, size int, v uint64) error {
	addr, err := m.Symbol(name)
	if err != nil {
		return err
	}
	return m.Mem.WriteUint(addr, size, v)
}
