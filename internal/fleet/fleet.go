package fleet

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/link"
	"repro/internal/metrics"
	"repro/internal/snapshot"
)

// Config sizes and seeds a fleet run. The zero value is not usable;
// call Defaults (or fix up the fields you set) before Run.
type Config struct {
	Seed     int64
	Shards   int
	Machines int
	Rounds   int

	// BatchMin/BatchMax bound the open-loop generator's per-round
	// batch size; the draw is deterministic per (seed, machine, round).
	BatchMin int
	BatchMax int

	// StormEvery rounds, a fleet-wide config flip commits on every
	// machine. HealthEvery rounds the supervisor probes liveness.
	// SnapEvery rounds each machine checkpoints. MigrateEvery rounds
	// the coordinator moves one machine between shards (0 disables).
	StormEvery   int
	HealthEvery  int
	SnapEvery    int
	MigrateEvery int

	// Mode is the commit concurrency mode for every machine;
	// ModeStopMachine by default so rendezvous latencies are measured.
	Mode core.CommitMode

	// ActiveStorms parks each machine mid-batch — PC inside a
	// multiversed function body — before a storm round's flip, so the
	// commit lands against an active function. Without the OSR
	// escalation this shape parks every flip (ErrFunctionActive burns
	// the whole retry budget); with it the ladder is retry → OSR → park
	// and the flip lands.
	ActiveStorms bool

	// CommitRetries bounds storm-commit retries before parking the
	// flip; RestartRetries bounds snapshot restores before a machine
	// is marked failed. StepBudget is the wedge deadline per guest
	// call in CPU steps.
	CommitRetries  int
	RestartRetries int
	StepBudget     uint64

	// Chaos arms the kill schedule: KillRate out of 1000 is the
	// per-(machine, round) probability of a scheduled kill, split
	// between mid-batch and mid-commit phases. FaultPoints, when
	// non-zero, also arms a per-machine commit fault plan.
	Chaos       bool
	KillRate    int
	FaultPoints int

	// restoreHook, when set, runs before each snapshot restore and may
	// veto it by returning an error. Test seam for the retry/backoff
	// path; nil in production.
	restoreHook func(id, attempt int) error

	// planHook, when set, supplies each machine's fault plan instead
	// of the seeded generator. Test seam for targeted fault shapes
	// (e.g. an all-commits-abort plan); nil in production.
	planHook func(id int) *faultinject.Plan
}

// Defaults fills every unset field with a sensible small-fleet value.
func (c *Config) Defaults() {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Machines <= 0 {
		c.Machines = 64
	}
	if c.Rounds <= 0 {
		c.Rounds = 24
	}
	if c.BatchMin <= 0 {
		c.BatchMin = 4
	}
	if c.BatchMax < c.BatchMin {
		c.BatchMax = c.BatchMin + 12
	}
	if c.StormEvery <= 0 {
		c.StormEvery = 3
	}
	if c.HealthEvery <= 0 {
		c.HealthEvery = 2
	}
	if c.SnapEvery <= 0 {
		c.SnapEvery = 4
	}
	if c.MigrateEvery == 0 {
		c.MigrateEvery = 6
	}
	if c.Mode == 0 {
		c.Mode = core.ModeStopMachine
	}
	if c.CommitRetries <= 0 {
		c.CommitRetries = 4
	}
	if c.RestartRetries <= 0 {
		c.RestartRetries = 6
	}
	if c.StepBudget == 0 {
		c.StepBudget = 1 << 22
	}
	if c.Chaos && c.KillRate <= 0 {
		c.KillRate = 30
	}
}

// Fleet is one assembled run: the shared image, the shards and their
// members, the kill schedule, and the merged metrics root.
type Fleet struct {
	cfg    Config
	img    *link.Image
	shards []*shard

	// killByMember[id][round] = kill phase. Precomputed before the
	// shards start so the lookup is read-only across goroutines; the
	// inner map is mutated (consumed kills are deleted) only by the
	// goroutine running the owning shard.
	killByMember map[int]map[int]int

	root        *metrics.Registry
	hCommit     *metrics.Histogram
	hRendezvous *metrics.Histogram
}

// New compiles the workload, builds the shards and their members, and
// boots every machine to its round-0 checkpoint.
func New(cfg Config) (*Fleet, error) {
	cfg.Defaults()
	img, _, err := core.BuildImage(core.GenOptions{}, core.Source{Name: "fleet.mvc", Text: workloadSrc})
	if err != nil {
		return nil, fmt.Errorf("fleet: workload build: %w", err)
	}
	fl := &Fleet{
		cfg:  cfg,
		img:  img,
		root: metrics.New(),
	}
	fl.hCommit = &metrics.Histogram{}
	fl.hRendezvous = &metrics.Histogram{}
	fl.buildKillSchedule()

	for i := 0; i < cfg.Shards; i++ {
		sh := newShard(i, fl)
		fl.shards = append(fl.shards, sh)
		fl.root.Merge(sh.reg, metrics.L("shard", fmt.Sprintf("%d", i)))
	}
	for id := 0; id < cfg.Machines; id++ {
		sh := fl.shards[id%cfg.Shards]
		mb := &member{id: id, fl: fl, sh: sh}
		if cfg.planHook != nil {
			mb.plan = cfg.planHook(id)
		} else if cfg.Chaos && cfg.FaultPoints > 0 {
			mb.plan = faultinject.New(int64(mix(uint64(cfg.Seed), tagKill, uint64(id))), faultinject.Opts{
				Points: cfg.FaultPoints,
				CPUs:   1,
				MaxOp:  64,
				Kinds:  []faultinject.Kind{faultinject.KindProtect, faultinject.KindDropFlush},
			})
		}
		sh.members = append(sh.members, mb)
		if err := mb.boot(); err != nil {
			return nil, err
		}
	}
	for _, sh := range fl.shards {
		sh.refreshGauges()
	}
	return fl, nil
}

// Registry is the fleet-wide metrics root: every shard's registry
// merged under its shard label. Serve it with metrics.WritePrometheus.
func (fl *Fleet) Registry() *metrics.Registry { return fl.root }

// buildKillSchedule rolls the deterministic chaos kill schedule: for
// each (machine, round) an independent draw against KillRate decides
// whether the machine is power-cut that round, and a second bit picks
// the phase (mid-batch vs mid-commit; mid-commit only lands on storm
// rounds, otherwise it degrades to mid-batch).
func (fl *Fleet) buildKillSchedule() {
	fl.killByMember = make(map[int]map[int]int)
	if !fl.cfg.Chaos || fl.cfg.KillRate <= 0 {
		return
	}
	for id := 0; id < fl.cfg.Machines; id++ {
		for r := 2; r <= fl.cfg.Rounds; r++ { // round 1 spared: every machine serves before chaos starts
			h := mix(uint64(fl.cfg.Seed), tagKill, uint64(id), uint64(r))
			if int(h%1000) >= fl.cfg.KillRate {
				continue
			}
			phase := killAtBatch
			if (h>>32)&1 == 1 && fl.cfg.StormEvery > 0 && r%fl.cfg.StormEvery == 0 {
				phase = killMidCommit
			}
			if fl.killByMember[id] == nil {
				fl.killByMember[id] = make(map[int]int)
			}
			fl.killByMember[id][r] = phase
		}
	}
}

// takeKill consumes the scheduled kill for (id, round), if any.
// Returns (round, phase) or (-1, -1). Only the goroutine running the
// member's shard calls this, so the delete is single-writer.
func (fl *Fleet) takeKill(id, round int) (int, int) {
	rounds := fl.killByMember[id]
	if rounds == nil {
		return -1, -1
	}
	phase, ok := rounds[round]
	if !ok {
		return -1, -1
	}
	delete(rounds, round)
	return round, phase
}

// Run executes the fleet: Rounds global rounds, each a parallel step
// of every shard behind a barrier, with the coordinator running the
// migration policy between rounds. It ends with a drain (restarting
// any still-down machines so their timelines complete) and a final
// per-machine capture for the report.
func (fl *Fleet) Run() (*Result, error) {
	start := time.Now()
	for r := 1; r <= fl.cfg.Rounds; r++ {
		fl.stepShards(r)
		if fl.cfg.MigrateEvery > 0 && fl.cfg.Shards > 1 && r%fl.cfg.MigrateEvery == 0 {
			fl.migrate(r)
		}
	}
	fl.drain()
	res, err := fl.report()
	if err != nil {
		return nil, err
	}
	res.HostSeconds = time.Since(start).Seconds()
	return res, nil
}

func (fl *Fleet) stepShards(r int) {
	var wg sync.WaitGroup
	for _, sh := range fl.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.runRound(r)
		}(sh)
	}
	wg.Wait()
}

// migrate runs between rounds, with every shard goroutine parked at
// the barrier, so it may touch any shard. Policy, in order: evacuate
// one machine off the shard taking the most chaos kills this epoch;
// else rebalance when the member-count spread reaches 2; else run the
// rotation drill (deterministic round-robin) so the migration path is
// exercised on every run. The moved machine is checkpointed, torn
// down on the source, and restored from that snapshot on the
// destination — the same path a real evacuation takes.
func (fl *Fleet) migrate(r int) {
	src := fl.pickSource()
	if src == nil {
		return
	}
	dst := fl.pickDest(src)
	if dst == nil || dst == src {
		return
	}
	mb := fl.pickMigrant(src, r)
	if mb == nil {
		return
	}
	fl.moveMember(mb, src, dst)
	for _, sh := range fl.shards {
		sh.killsSinceEpoch = 0
	}
}

func (fl *Fleet) pickSource() *shard {
	// Highest kill count this epoch wins; ties and the no-kill case
	// fall through to load then index so the choice is deterministic.
	var best *shard
	for _, sh := range fl.shards {
		if len(sh.members) == 0 {
			continue
		}
		if best == nil ||
			sh.killsSinceEpoch > best.killsSinceEpoch ||
			(sh.killsSinceEpoch == best.killsSinceEpoch && len(sh.members) > len(best.members)) {
			best = sh
		}
	}
	return best
}

func (fl *Fleet) pickDest(src *shard) *shard {
	var best *shard
	for _, sh := range fl.shards {
		if sh == src {
			continue
		}
		if best == nil || len(sh.members) < len(best.members) {
			best = sh
		}
	}
	return best
}

// pickMigrant prefers a healthy machine (evacuating working capacity
// off a failing shard); the round salts the draw so the drill rotates
// through members across epochs.
func (fl *Fleet) pickMigrant(src *shard, r int) *member {
	var live []*member
	for _, mb := range src.members {
		if mb.state == stateHealthy {
			live = append(live, mb)
		}
	}
	if len(live) == 0 {
		return nil
	}
	return live[int(mix(uint64(fl.cfg.Seed), tagKill, uint64(r))%uint64(len(live)))]
}

// moveMember is the live-migration protocol: fresh checkpoint at the
// barrier, incarnation torn down on src, member rehomed, restored
// from the snapshot on dst. On restore failure the member goes down
// on dst and the supervisor's normal retry path takes over.
func (fl *Fleet) moveMember(mb *member, src, dst *shard) {
	if err := mb.checkpoint(mb.nextRound - 1); err != nil {
		return // keep the machine where it is; migration is best-effort
	}
	mb.discard()
	src.take(mb)
	src.cMigrationsOut.Add(1)
	dst.insert(mb)
	dst.cMigrationsIn.Add(1)
	if err := mb.restore(); err != nil {
		// Arrival restore failed: the member lands Down on dst and
		// dst's supervisor takes over with its normal retry budget.
		return
	}
	mb.state = stateHealthy
}

// drain gives still-down machines bounded extra supervision rounds to
// restart and replay up to the final round, so the report compares
// complete timelines. Simulated time keeps ticking so backoffs expire.
func (fl *Fleet) drain() {
	const maxDrainRounds = 64
	for i := 0; i < maxDrainRounds; i++ {
		pending := false
		for _, sh := range fl.shards {
			for _, mb := range sh.members {
				if mb.state == stateFailed {
					continue
				}
				if mb.state == stateDown || mb.nextRound <= fl.cfg.Rounds {
					pending = true
				}
			}
		}
		if !pending {
			return
		}
		fl.stepShards(fl.cfg.Rounds)
	}
}

// MachineResult is one machine's deterministic endpoint.
type MachineResult struct {
	ID       int    `json:"id"`
	Shard    int    `json:"shard"`
	State    string `json:"state"`
	Requests uint64 `json:"requests"`
	Checksum uint64 `json:"checksum"`
	Digest   string `json:"digest"` // final snapshot digest; "" when failed
	Restarts int    `json:"restarts"`
	Kills    int    `json:"kills"`
	Parked   bool   `json:"parked"`
}

// ShardResult aggregates one shard.
type ShardResult struct {
	Shard      int     `json:"shard"`
	Machines   int     `json:"machines"`
	Cycles     uint64  `json:"cycles"`
	Requests   uint64  `json:"requests"`
	Restarts   uint64  `json:"restarts"`
	Kills      uint64  `json:"kills"`
	Parked     uint64  `json:"parked_flips"`
	Degraded   int     `json:"degraded"`
	MigrIn     uint64  `json:"migrations_in"`
	MigrOut    uint64  `json:"migrations_out"`
	Throughput float64 `json:"requests_per_kcycle"`
}

// Result is the run report. Everything except HostSeconds is a
// deterministic function of the Config.
type Result struct {
	Machines []MachineResult `json:"machines"`
	Shards   []ShardResult   `json:"shards"`
	// Requests counts work performed (replayed rounds included);
	// Served is the guest-side total of requests actually answered,
	// the number Scheduled compares against for the zero-loss check.
	Requests      uint64  `json:"requests_total"`
	Served        uint64  `json:"requests_served"`
	Scheduled     uint64  `json:"requests_scheduled"`
	Restarts      uint64  `json:"restarts_total"`
	Kills         uint64  `json:"kills_total"`
	Migrations    uint64  `json:"migrations_total"`
	ParkedFlips   uint64  `json:"parked_flips_total"`
	CommitAborts  uint64  `json:"commit_aborts_total"`
	OSRCommits    uint64  `json:"osr_commits_total"`
	OSRTransfers  uint64  `json:"osr_transfers_total"`
	Failed        int     `json:"failed_machines"`
	CommitP50     uint64  `json:"commit_p50_cycles"`
	CommitP99     uint64  `json:"commit_p99_cycles"`
	CommitP999    uint64  `json:"commit_p999_cycles"`
	RendezvousP99 uint64  `json:"rendezvous_p99_cycles"`
	HostSeconds   float64 `json:"host_seconds"`
}

// report drives the final capture of every machine and aggregates.
func (fl *Fleet) report() (*Result, error) {
	res := &Result{}
	for _, sh := range fl.shards {
		sr := ShardResult{
			Shard:    sh.idx,
			Machines: len(sh.members),
			Cycles:   sh.cycles,
			Requests: sh.cRequests.Value(),
			Restarts: sh.cRestarts.Value(),
			Kills:    sh.cKills.Value(),
			Parked:   sh.cParkedFlips.Value(),
			MigrIn:   sh.cMigrationsIn.Value(),
			MigrOut:  sh.cMigrationsOut.Value(),
		}
		if sh.cycles > 0 {
			sr.Throughput = float64(sr.Requests) / (float64(sh.cycles) / 1000)
		}
		for _, mb := range sh.members {
			mr := MachineResult{
				ID:       mb.id,
				Shard:    sh.idx,
				State:    mb.state.String(),
				Restarts: mb.restarts,
				Kills:    mb.killsTaken,
				Parked:   mb.parked,
			}
			if mb.parked && mb.state != stateFailed {
				sr.Degraded++
			}
			if mb.state == stateFailed {
				res.Failed++
			} else if mb.m != nil {
				var err error
				if mr.Requests, err = mb.m.ReadGlobal("requests", 8); err != nil {
					return nil, fmt.Errorf("fleet: machine %d requests: %w", mb.id, err)
				}
				if mr.Checksum, err = mb.m.ReadGlobal("checksum", 8); err != nil {
					return nil, fmt.Errorf("fleet: machine %d checksum: %w", mb.id, err)
				}
				snap, err := snapshot.Capture(mb.m, mb.rt)
				if err != nil {
					return nil, fmt.Errorf("fleet: machine %d final capture: %w", mb.id, err)
				}
				if mr.Digest, err = snapshot.Digest(snap.Encode()); err != nil {
					return nil, fmt.Errorf("fleet: machine %d digest: %w", mb.id, err)
				}
			}
			res.Machines = append(res.Machines, mr)
		}
		res.Shards = append(res.Shards, sr)
		res.Requests += sr.Requests
		res.Restarts += sr.Restarts
		res.Kills += sr.Kills
		res.Migrations += sr.MigrIn
		res.ParkedFlips += sr.Parked
		res.CommitAborts += sh.cCommitAborts.Value()
		res.OSRCommits += sh.cOSRCommits.Value()
		res.OSRTransfers += sh.cOSRTransfers.Value()
	}
	sort.Slice(res.Machines, func(i, j int) bool { return res.Machines[i].ID < res.Machines[j].ID })
	for _, m := range res.Machines {
		res.Served += m.Requests
	}
	for id := 0; id < fl.cfg.Machines; id++ {
		res.Scheduled += fl.cfg.scheduledRequests(id)
	}
	cs := fl.hCommit.Snapshot()
	res.CommitP50, _ = cs.Quantile(0.50)
	res.CommitP99, _ = cs.Quantile(0.99)
	res.CommitP999, _ = cs.Quantile(0.999)
	rs := fl.hRendezvous.Snapshot()
	res.RendezvousP99, _ = rs.Quantile(0.99)
	return res, nil
}

// Fingerprint folds every deterministic field of the result into one
// line: two identically-seeded runs must produce equal fingerprints.
func (r *Result) Fingerprint() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "req=%d sched=%d restarts=%d kills=%d parked=%d osr=%d failed=%d |",
		r.Requests, r.Scheduled, r.Restarts, r.Kills, r.ParkedFlips, r.OSRCommits, r.Failed)
	for _, m := range r.Machines {
		fmt.Fprintf(&sb, " %d:%s:%d:%d:%s", m.ID, m.State, m.Requests, m.Checksum, m.Digest)
	}
	return sb.String()
}

// MemberErrors collects the first error of every failed machine, for
// surfacing in CLIs and tests.
func (fl *Fleet) MemberErrors() []error {
	var errs []error
	for _, sh := range fl.shards {
		for _, mb := range sh.members {
			if mb.err != nil {
				errs = append(errs, mb.err)
			}
		}
	}
	return errs
}
