package fleet

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

// assertZeroLoss checks the open-loop contract: every non-failed
// machine's guest-side request counter equals the analytic schedule,
// however many kills, restarts and replays it took to get there.
func assertZeroLoss(t *testing.T, fl *Fleet, res *Result) {
	t.Helper()
	for _, m := range res.Machines {
		if m.State == "failed" {
			continue
		}
		if want := fl.cfg.scheduledRequests(m.ID); m.Requests != want {
			t.Errorf("machine %d: served %d requests, schedule offered %d (kills=%d restarts=%d)",
				m.ID, m.Requests, want, m.Kills, m.Restarts)
		}
	}
}

func TestFleetQuietRunServesEverything(t *testing.T) {
	cfg := Config{Seed: 7, Shards: 2, Machines: 6, Rounds: 10}
	fl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.Kills != 0 || res.Restarts != 0 {
		t.Fatalf("quiet run saw failures: %+v", res)
	}
	assertZeroLoss(t, fl, res)
	if res.Requests == 0 || res.CommitP99 == 0 {
		t.Fatalf("counters empty: requests=%d commitP99=%d", res.Requests, res.CommitP99)
	}
	// The rotation drill guarantees the migration path runs even on a
	// healthy fleet.
	if res.Migrations == 0 {
		t.Fatal("no migration on a multi-shard run")
	}
	for _, m := range res.Machines {
		if m.State != "healthy" {
			t.Errorf("machine %d ended %s", m.ID, m.State)
		}
		if m.Digest == "" {
			t.Errorf("machine %d has no final digest", m.ID)
		}
	}
}

// TestFleetShardReproducible is the bit-reproducibility contract: two
// identically-seeded runs — chaos, storms, migrations and all — land
// on identical per-machine digests, checksums and counters.
func TestFleetShardReproducible(t *testing.T) {
	cfg := Config{Seed: 3, Shards: 3, Machines: 9, Rounds: 14, Chaos: true, KillRate: 70}
	run := func() string {
		fl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fl.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Kills == 0 {
			t.Fatal("chaos run scheduled no kills; raise KillRate")
		}
		return res.Fingerprint()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identically-seeded runs diverged:\nA: %s\nB: %s", a, b)
	}
}

// TestFleetDegradedMode is the parked-flip contract: a fault plan
// that aborts every commit attempt leaves every machine serving the
// old (boot-time) variant, loses zero requests, and surfaces the
// degraded-mode gauge.
func TestFleetDegradedMode(t *testing.T) {
	abortAll := func(id int) *faultinject.Plan {
		// A persistent protect fault on every text-protect operation:
		// each commit attempt dies at its first protect, and the
		// (also-faulted) rollback still surfaces ErrCommitAborted. The
		// plan is sized so the whole run cannot exhaust it — an abort
		// burns one op per bounded rollback retry.
		pts := make([]faultinject.Point, 4096)
		for i := range pts {
			pts[i] = faultinject.Point{Kind: faultinject.KindProtect, Op: uint64(i)}
		}
		return faultinject.Exact(pts...)
	}
	cfg := Config{Seed: 11, Shards: 2, Machines: 4, Rounds: 9, planHook: abortAll}
	fl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("degraded fleet lost machines: %+v", res)
	}
	assertZeroLoss(t, fl, res)
	if res.ParkedFlips == 0 || res.CommitAborts == 0 {
		t.Fatalf("no storm was parked: parked=%d aborts=%d", res.ParkedFlips, res.CommitAborts)
	}
	for _, m := range res.Machines {
		if !m.Parked {
			t.Errorf("machine %d is not parked after an all-abort run", m.ID)
		}
	}
	// Old variant kept: with every commit refused, the switch memory
	// must still hold the boot-time values the generic paths read.
	for _, sh := range fl.shards {
		for _, mb := range sh.members {
			comp, err := mb.readSwitch("compression")
			if err != nil {
				t.Fatal(err)
			}
			iso, err := mb.readSwitch("isolated")
			if err != nil {
				t.Fatal(err)
			}
			if comp != 0 || iso != 0 {
				t.Errorf("machine %d serves flipped config (%d,%d) despite parked storms", mb.id, comp, iso)
			}
		}
	}
	// The degraded gauge is visible through the merged export.
	snap := fl.Registry().Snapshot()
	fam := snap.Find("fleet_degraded_machines")
	if fam == nil {
		t.Fatal("fleet_degraded_machines not exported")
	}
	var degraded float64
	for _, s := range fam.Series {
		degraded += *s.Value
	}
	if int(degraded) != len(res.Machines) {
		t.Errorf("degraded gauge = %v, want %d", degraded, len(res.Machines))
	}
}

// TestFleetActiveStormOSR is the escalation-ladder contract: with
// every storm landing against a machine parked inside a multiversed
// function body — the shape that previously burned the whole retry
// budget on ErrFunctionActive and parked the flip — the retry → OSR →
// park ladder must land every flip. fleet_degraded_machines stays at
// zero, nothing parks, zero requests are lost, and the run stays
// bit-reproducible.
func TestFleetActiveStormOSR(t *testing.T) {
	cfg := Config{Seed: 13, Shards: 2, Machines: 6, Rounds: 12, ActiveStorms: true}
	run := func() (*Fleet, *Result) {
		fl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fl.Run()
		if err != nil {
			t.Fatal(err)
		}
		return fl, res
	}
	fl, res := run()
	if res.Failed != 0 {
		t.Fatalf("active-storm run lost machines: %v", fl.MemberErrors())
	}
	assertZeroLoss(t, fl, res)
	if res.CommitAborts == 0 {
		t.Fatal("no commit was ever refused — the storms never hit an active frame, escalation untested")
	}
	if res.OSRCommits == 0 {
		t.Fatal("no storm commit landed via OSR escalation")
	}
	if res.ParkedFlips != 0 {
		t.Fatalf("%d flips parked despite OSR escalation", res.ParkedFlips)
	}
	for _, m := range res.Machines {
		if m.Parked {
			t.Errorf("machine %d ended parked (degraded) under OSR escalation", m.ID)
		}
	}
	snap := fl.Registry().Snapshot()
	fam := snap.Find("fleet_degraded_machines")
	if fam == nil {
		t.Fatal("fleet_degraded_machines not exported")
	}
	var degraded float64
	for _, s := range fam.Series {
		degraded += *s.Value
	}
	if degraded != 0 {
		t.Errorf("fleet_degraded_machines = %v, want 0", degraded)
	}
	_, res2 := run()
	if res.Fingerprint() != res2.Fingerprint() {
		t.Fatalf("active-storm reruns diverged:\nA: %s\nB: %s", res.Fingerprint(), res2.Fingerprint())
	}
}

// TestFleetRestartBackoff drives the supervisor's retry path through
// the restoreHook seam: restores that fail a few times must back off
// and eventually land; restores that never succeed must exhaust the
// bounded retries and mark the machine failed without stalling the
// rest of the fleet.
func TestFleetRestartBackoff(t *testing.T) {
	attempts := make(map[int]int)
	cfg := Config{
		Seed: 5, Shards: 2, Machines: 4, Rounds: 12,
		Chaos: true, KillRate: 120, RestartRetries: 6,
		restoreHook: func(id, attempt int) error {
			attempts[id]++
			if attempts[id] <= 2 {
				return errors.New("injected restore failure")
			}
			return nil
		},
	}
	fl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Kills == 0 {
		t.Fatal("no kills scheduled; the backoff path never ran")
	}
	if res.Failed != 0 {
		t.Fatalf("transiently-failing restores should still recover: %+v", res)
	}
	assertZeroLoss(t, fl, res)

	// Hard case: one machine's restores always fail.
	attempts2 := 0
	cfg2 := Config{
		Seed: 5, Shards: 2, Machines: 4, Rounds: 12,
		Chaos: true, KillRate: 120, RestartRetries: 3,
		restoreHook: func(id, attempt int) error {
			if id == 0 {
				attempts2++
				return errors.New("machine 0 cannot restore")
			}
			return nil
		},
	}
	fl2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := fl2.Run()
	if err != nil {
		t.Fatal(err)
	}
	killed0 := false
	for _, m := range res2.Machines {
		if m.ID == 0 && m.Kills > 0 {
			killed0 = true
			if m.State != "failed" {
				t.Errorf("machine 0 should be failed after exhausting restores, is %s", m.State)
			}
		}
	}
	if !killed0 {
		t.Skip("seed did not kill machine 0; backoff-exhaustion path not reachable")
	}
	if attempts2 != cfg2.RestartRetries {
		t.Errorf("restore attempts = %d, want exactly RestartRetries = %d", attempts2, cfg2.RestartRetries)
	}
	if len(fl2.MemberErrors()) != 1 {
		t.Errorf("MemberErrors = %v, want exactly one", fl2.MemberErrors())
	}
	assertZeroLoss(t, fl2, res2)
}

// TestFleetMetricsExport pins the merged exposition: per-shard series
// keyed apart by the shard label, one family header each.
func TestFleetMetricsExport(t *testing.T) {
	fl, err := New(Config{Seed: 2, Shards: 2, Machines: 4, Rounds: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Run(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := fl.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`fleet_requests_total{shard="0"}`,
		`fleet_requests_total{shard="1"}`,
		`fleet_commit_latency_cycles_bucket`,
		`fleet_rendezvous_latency_cycles_count`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if n := strings.Count(out, "# TYPE fleet_requests_total counter"); n != 1 {
		t.Errorf("fleet_requests_total header rendered %d times, want 1", n)
	}
}

// TestFleetAcceptanceChaos is the issue's acceptance run: ≥64
// machines on ≥4 shards under a fault plan injecting machine kills
// and commit faults during config-flip storms. It must complete with
// no supervisor deadlock (the run returning is the proof), every
// killed machine restarted from its snapshot, at least one live
// migration, and a bit-identical rerun.
func TestFleetAcceptanceChaos(t *testing.T) {
	cfg := Config{
		Seed: 42, Shards: 4, Machines: 64, Rounds: 18,
		Chaos: true, KillRate: 40, FaultPoints: 6,
	}
	run := func() (*Fleet, *Result) {
		fl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fl.Run()
		if err != nil {
			t.Fatal(err)
		}
		return fl, res
	}
	fl, res := run()
	if res.Kills == 0 {
		t.Fatal("acceptance run scheduled no kills")
	}
	if res.Migrations == 0 {
		t.Fatal("acceptance run performed no migration")
	}
	for _, m := range res.Machines {
		if m.Kills > 0 && m.State == "healthy" && m.Restarts == 0 {
			t.Errorf("machine %d was killed %d times yet reports no snapshot restart", m.ID, m.Kills)
		}
		if m.State == "failed" {
			t.Errorf("machine %d failed permanently: %v", m.ID, fl.MemberErrors())
		}
	}
	assertZeroLoss(t, fl, res)

	_, res2 := run()
	if res.Fingerprint() != res2.Fingerprint() {
		t.Fatalf("acceptance reruns diverged:\nA: %s\nB: %s", res.Fingerprint(), res2.Fingerprint())
	}
}
