// Package fleet runs N simulated machines as a supervised,
// request-serving service: machines are sharded across host
// goroutines, driven by an open-loop deterministic load generator,
// swept by fleet-wide configuration-flip storms that Commit on every
// shard, and kept alive by a per-shard supervisor that restarts
// faulted machines from their last periodic snapshot, degrades to the
// old variant when a commit storm cannot land, and live-migrates
// machines between shards by snapshot transfer.
//
// Everything the fleet does is a deterministic function of
// (Config.Seed, machine id, round): batch sizes, request payloads,
// flip values, fault plans and kill schedules all derive from a
// splitmix64 hash, never from host time or host randomness. That is
// what makes the robustness claims testable — a machine killed
// mid-run and restored from its snapshot replays the rounds it lost
// and must land on the byte-identical final snapshot an unkilled run
// produces.
package fleet

// workloadSrc is the per-machine guest program: an E1/E4-style
// request server with two multiverse-controlled feature flags. The
// compression level selects the reply encoder variant; the tenant
// isolation mode selects whether per-tenant state is partitioned or
// shared. Both are classic fixed-after-reconfiguration switches: the
// fleet's config-flip storms rebind them at runtime via Commit.
const workloadSrc = `
	multiverse(0, 1, 2) int compression;
	multiverse int isolated;

	ulong requests;
	ulong reply_bytes;
	ulong checksum;
	ulong tenant_state[16];

	// encode is the reply encoder: identity, fast fold, or the
	// full FNV-style mix, selected by the compression level.
	multiverse ulong encode(ulong v) {
		if (compression == 2) {
			ulong acc = v;
			acc = acc ^ (acc >> 13);
			acc = acc * 1099511628211;
			acc = acc ^ (acc >> 7);
			return acc;
		}
		if (compression == 1) {
			return v ^ (v >> 17);
		}
		return v;
	}

	// tenant_slot maps a request's tenant to its state cell: its own
	// cell under isolation, the shared cell 0 otherwise.
	multiverse ulong tenant_slot(ulong t) {
		if (isolated) {
			return t & 15;
		}
		return 0;
	}

	ulong serve_one(ulong payload) {
		ulong r = encode(payload);
		ulong slot = tenant_slot(payload >> 4);
		tenant_state[slot] = tenant_state[slot] + (r & 255);
		requests = requests + 1;
		reply_bytes = reply_bytes + ((r & 63) + 1);
		return r;
	}

	// serve_batch drains one load-generator batch: n requests with
	// payloads from a seeded xorshift-free LCG stream.
	ulong serve_batch(ulong n, ulong seed) {
		ulong x = seed;
		ulong acc = 0;
		ulong i;
		for (i = 0; i < n; i++) {
			x = x * 6364136223846793005 + 1442695040888963407;
			acc = acc ^ serve_one(x);
		}
		checksum = checksum ^ acc;
		return acc;
	}

	ulong health(void) { return 4242; }
`

// healthOK is the liveness magic health() must return.
const healthOK = 4242

// mix folds its arguments through splitmix64 — the fleet's only
// source of "randomness", so every schedule is a pure function of the
// seed and replays bit-identically.
func mix(vs ...uint64) uint64 {
	x := uint64(0x9e3779b97f4a7c15)
	for _, v := range vs {
		x ^= v + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		x = z ^ (z >> 31)
	}
	return x
}

// Schedule tags: distinct stream selectors for mix so the batch-size,
// payload, flip and kill streams are independent.
const (
	tagBatch = 0xba7c4
	tagArg   = 0xa46
	tagComp  = 0xc0317
	tagIso   = 0x15014
	tagKill  = 0x4b11
)

// batchSize is the open-loop load generator: how many requests the
// generator hands machine id in round r.
func (c *Config) batchSize(id, round int) uint64 {
	spread := uint64(c.BatchMax - c.BatchMin + 1)
	return uint64(c.BatchMin) + mix(uint64(c.Seed), tagBatch, uint64(id), uint64(round))%spread
}

// batchArg is the payload-stream seed for machine id in round r.
func (c *Config) batchArg(id, round int) uint64 {
	return mix(uint64(c.Seed), tagArg, uint64(id), uint64(round))
}

// flipValues is the fleet-wide storm schedule: the configuration the
// storm at round r drives every machine toward.
func (c *Config) flipValues(round int) (compression, isolated int64) {
	return int64(mix(uint64(c.Seed), tagComp, uint64(round)) % 3),
		int64(mix(uint64(c.Seed), tagIso, uint64(round)) % 2)
}

// scheduledRequests is the analytic total of requests the load
// generator offers machine id across the whole run — the number a
// zero-loss fleet must have served at the end, however many restarts
// and replays it took to get there.
func (c *Config) scheduledRequests(id int) uint64 {
	var total uint64
	for r := 1; r <= c.Rounds; r++ {
		total += c.batchSize(id, r)
	}
	return total
}
