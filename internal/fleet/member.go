package fleet

import (
	"errors"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/machine"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// memberState is the supervision state machine:
//
//	healthy ──fault/kill──▶ down ──restore ok──▶ healthy
//	   ▲                     │ restore failed: backoff in the
//	   │                     │ shard's simulated-cycle ledger,
//	   └──── catch-up ◀──────┘ bounded retries ──▶ failed
//
// A down member holds no live machine; its identity is its last
// checkpoint. Restoring re-executes every round since that
// checkpoint, so recovery never loses requests — it re-serves them.
type memberState uint8

const (
	stateHealthy memberState = iota
	stateDown
	stateFailed
)

func (s memberState) String() string {
	switch s {
	case stateHealthy:
		return "healthy"
	case stateDown:
		return "down"
	case stateFailed:
		return "failed"
	}
	return "unknown"
}

// Kill phases: where in a round a chaos kill lands.
const (
	killAtBatch   = 0 // power cut mid-batch, between request steps
	killMidCommit = 1 // power cut during the storm's commit
)

// checkpoint is one periodic capture: the canonical machine snapshot
// plus the host-side state the replay needs — the fault plan's
// progress (so replayed rounds re-fire exactly the faults the
// original timeline saw) and the parked-flip flag.
type checkpoint struct {
	round  int // state after completing this round
	snap   []byte
	plan   faultinject.PlanState
	parked bool
}

// member is one fleet machine: a guest system (its current
// incarnation), its recovery state, and its deterministic identity.
type member struct {
	id int
	fl *Fleet
	sh *shard

	// Live incarnation; nil while down.
	m  *machine.Machine
	rt *core.Runtime

	plan *faultinject.Plan // nil without chaos; survives incarnations

	nextRound int // next round this member's timeline will execute
	parked    bool
	ckpt      *checkpoint

	state           memberState
	restartAttempts int
	backoffReadyAt  uint64 // shard-cycle ledger value gating the next restore try
	lastCycles      uint64 // CPU cycle watermark for the shard ledger

	// Deterministic per-member tallies (reported, compared across runs).
	restarts    int
	killsTaken  int
	snapSkipped int
	lastFault   error // most recent recoverable fault, for diagnostics
	err         error // first unexpected (non-recoverable) error
}

// boot constructs the first incarnation and takes the round-0
// checkpoint every later restore can fall back to.
func (mb *member) boot() error {
	if err := mb.incarnate(); err != nil {
		return err
	}
	if mb.plan != nil {
		mb.plan.Attach(mb.m)
	}
	mb.nextRound = 1
	return mb.checkpoint(0)
}

// incarnate builds a fresh machine+runtime pair from the fleet image
// with the member's commit options, tracer and step budget.
func (mb *member) incarnate() error {
	m, err := machine.New(mb.fl.img)
	if err != nil {
		return fmt.Errorf("fleet: machine %d: %w", mb.id, err)
	}
	rt, err := core.NewRuntime(mb.fl.img, &core.UserPlatform{M: m})
	if err != nil {
		return fmt.Errorf("fleet: machine %d: %w", mb.id, err)
	}
	rt.SetCommitOptions(core.CommitOptions{Mode: mb.fl.cfg.Mode, OnActive: core.ActiveRefuse})
	rt.Tracer = &memberTracer{mb: mb}
	m.MaxSteps = mb.fl.cfg.StepBudget
	mb.m, mb.rt = m, rt
	mb.lastCycles = m.CPU.Cycles()
	return nil
}

// syncLedger charges the cycles the live CPU consumed since the last
// sync to the shard's simulated-cycle ledger — the clock restart
// backoff waits on.
func (mb *member) syncLedger() {
	if mb.m == nil {
		return
	}
	cur := mb.m.CPU.Cycles()
	if cur > mb.lastCycles {
		mb.sh.cycles += cur - mb.lastCycles
	}
	mb.lastCycles = cur
}

// advanceTo drives the member's timeline to the global round r,
// catching up any rounds lost to a restart. The supervisor gate runs
// first: a down member only re-incarnates once its backoff expires in
// the shard's cycle ledger.
func (mb *member) advanceTo(r int) {
	for mb.nextRound <= r {
		switch mb.state {
		case stateFailed:
			return
		case stateDown:
			if !mb.tryRestart() {
				return
			}
		}
		live := mb.nextRound == r
		mb.runRound(mb.nextRound, live)
		mb.syncLedger()
	}
}

// runRound executes one round of the member's timeline: the storm (if
// due), the load-generator batch, the health probe and the periodic
// checkpoint. live is true when k is the current global round — only
// then can a scheduled chaos kill fire; replayed rounds never re-kill.
func (mb *member) runRound(k int, live bool) {
	kill, phase := -1, -1
	if live {
		kill, phase = mb.fl.takeKill(mb.id, k)
	}
	cfg := &mb.fl.cfg

	ranBatch := false
	if cfg.StormEvery > 0 && k%cfg.StormEvery == 0 {
		if kill == k && phase == killMidCommit {
			mb.stormThenDie(k)
			return
		}
		if cfg.ActiveStorms && kill != k {
			if !mb.batchWithStorm(k) {
				return
			}
			ranBatch = true
		} else if !mb.storm(k) {
			return
		}
	}

	if !ranBatch {
		if kill == k && phase == killAtBatch {
			mb.dieMidBatch(k)
			return
		}
		if !mb.batch(k) {
			return
		}
	}

	// A storm whose OSR escalation fell back to deferral for some
	// function applies it here, at the round's quiescent point, so the
	// bindings never lag the switch values across a round boundary.
	if mb.rt.DeferredCount() > 0 {
		if _, err := mb.rt.DrainDeferred(); err != nil {
			mb.fault(fmt.Errorf("deferred drain round %d: %w", k, err))
			return
		}
	}

	if cfg.HealthEvery > 0 && k%cfg.HealthEvery == 0 {
		if !mb.probe() {
			return
		}
	}

	mb.nextRound = k + 1

	if cfg.SnapEvery > 0 && k%cfg.SnapEvery == 0 {
		if err := mb.checkpoint(k); err != nil {
			mb.fail(err)
		}
	}
}

// storm drives the fleet-wide flip for round k: write the target
// switch values, Commit, and on ErrCommitAborted/ErrFunctionActive
// retry with exponential backoff charged to the machine's own cycle
// domain. The escalation ladder is retry → OSR → park: the first
// ErrFunctionActive switches the runtime to on-stack replacement
// (parked frames are herded or transferred into the new variant
// inside the rendezvous — backing off cannot help when the CPU is not
// advancing), and only when the retries are exhausted anyway is the
// flip parked — the old values are written back and the machine keeps
// serving the variant it already has, surfacing as degraded until a
// later storm lands.
func (mb *member) storm(k int) bool {
	comp, iso := mb.fl.cfg.flipValues(k)
	oldComp, err := mb.readSwitch("compression")
	if err != nil {
		mb.fail(err)
		return false
	}
	oldIso, err := mb.readSwitch("isolated")
	if err != nil {
		mb.fail(err)
		return false
	}
	if comp == oldComp && iso == oldIso && !mb.parked {
		return true
	}
	if err := mb.writeSwitches(comp, iso); err != nil {
		mb.fail(err)
		return false
	}
	mb.sh.cStormFlips.Add(1)

	escalated := false
	defer func() {
		if escalated {
			mb.setOnActive(core.ActiveRefuse)
		}
	}()
	for attempt := 0; ; attempt++ {
		tBefore := 0
		if mb.rt != nil {
			tBefore = mb.rt.Stats.OSRTransfers
		}
		err := mb.commitObserved()
		mb.syncLedger()
		if err == nil {
			if escalated {
				mb.sh.cOSRCommits.Add(1)
				mb.sh.cOSRTransfers.Add(uint64(mb.rt.Stats.OSRTransfers - tBefore))
			}
			if mb.parked {
				mb.parked = false
			}
			return true
		}
		if !errors.Is(err, core.ErrCommitAborted) && !errors.Is(err, core.ErrFunctionActive) {
			mb.fault(err)
			return false
		}
		mb.sh.cCommitAborts.Add(1)
		if errors.Is(err, core.ErrFunctionActive) && !escalated {
			escalated = true
			mb.setOnActive(core.ActiveOSR)
		}
		if attempt+1 >= mb.fl.cfg.CommitRetries {
			// Park: back to the last successfully committed values so
			// the uncommitted (generic) paths agree with the bindings
			// the rollback kept.
			if err := mb.writeSwitches(oldComp, oldIso); err != nil {
				mb.fail(err)
				return false
			}
			mb.parked = true
			mb.sh.cParkedFlips.Add(1)
			return true
		}
		mb.sh.cCommitRetries.Add(1)
		mb.m.CPU.AddCycles(commitBackoff(attempt))
	}
}

// commitObserved wraps Commit with the fleet's commit-latency model —
// the same protect/flush/site cost accounting core.AttachMetrics uses,
// observed into the shard and fleet histograms whether the commit
// lands or aborts (aborted attempts are exactly the tail worth seeing).
func (mb *member) commitObserved() error {
	memBefore := mb.m.Mem.Stats
	statBefore := mb.rt.Stats
	cycBefore := mb.m.CPU.Cycles()
	_, err := mb.rt.Commit()
	memDelta := mb.m.Mem.Stats.Sub(memBefore)
	s := mb.rt.Stats
	sites := uint64(s.SitesPatched - statBefore.SitesPatched +
		s.SitesInlined - statBefore.SitesInlined +
		s.SitesReverted - statBefore.SitesReverted +
		s.ProloguePatch - statBefore.ProloguePatch)
	latency := memDelta.ProtectCalls*core.CostCommitProtect +
		memDelta.Flushes*core.CostCommitFlush +
		sites*core.CostCommitSite +
		(mb.m.CPU.Cycles() - cycBefore)
	mb.sh.hCommit.Observe(latency)
	mb.fl.hCommit.Observe(latency)
	return err
}

// setOnActive swaps the runtime's activeness policy, keeping the
// configured commit mode. No-op on a down member.
func (mb *member) setOnActive(p core.OnActivePolicy) {
	if mb.rt == nil {
		return
	}
	mb.rt.SetCommitOptions(core.CommitOptions{Mode: mb.fl.cfg.Mode, OnActive: p})
}

// batchWithStorm is the ActiveStorms round shape: start the batch,
// park the CPU with its PC inside a multiversed function body, run the
// storm against that live frame, then resume the batch to completion.
// Requests served while parked-and-resumed count exactly as a plain
// batch does, so the zero-loss contract is unchanged.
func (mb *member) batchWithStorm(k int) bool {
	n := mb.fl.cfg.batchSize(mb.id, k)
	arg := mb.fl.cfg.batchArg(mb.id, k)
	c := mb.m.CPU
	if err := mb.m.StartCall(c, "serve_batch", n, arg); err != nil {
		mb.fault(fmt.Errorf("serve_batch round %d: %w", k, err))
		return false
	}
	if err := mb.parkInPatchable(); err != nil {
		mb.fault(err)
		return false
	}
	if !mb.storm(k) {
		return false
	}
	for !c.Halted() {
		if _, err := c.Run(mb.m.MaxSteps); err != nil {
			if chaos.IsInjectedFetchFault(err) {
				continue
			}
			mb.fault(fmt.Errorf("serve_batch round %d: %w", k, err))
			return false
		}
	}
	mb.syncLedger()
	mb.sh.cRequests.Add(n)
	mb.sh.cBatches.Add(1)
	return true
}

// parkInPatchable steps the started call until the PC lands inside a
// multiversed body (generic or variant), where the storm's activeness
// check must see it. Bounded; a batch that halts first simply leaves
// the storm quiesced, with nothing to replace.
func (mb *member) parkInPatchable() error {
	c := mb.m.CPU
	for i := 0; i < parkBudget && !c.Halted(); i++ {
		if err := c.Step(); err != nil {
			if chaos.IsInjectedFetchFault(err) {
				continue
			}
			return fmt.Errorf("fleet: machine %d parking mid-batch: %w", mb.id, err)
		}
		if mb.inPatchable(c.PC()) {
			return nil
		}
	}
	return nil
}

// inPatchable reports whether pc is inside any multiversed function
// body — generic or variant.
func (mb *member) inPatchable(pc uint64) bool {
	for _, fd := range mb.rt.Funcs() {
		if pc >= fd.Generic && pc < fd.Generic+fd.Size {
			return true
		}
		for _, v := range fd.Variants {
			if pc >= v.Addr && pc < v.Addr+v.Size {
				return true
			}
		}
	}
	return false
}

// batch serves one load-generator batch. Spurious injected fetch
// faults are ridden out (the PC holds); any other error — including a
// blown step budget, the cycle-domain wedge deadline — faults the
// member into supervision.
func (mb *member) batch(k int) bool {
	n := mb.fl.cfg.batchSize(mb.id, k)
	arg := mb.fl.cfg.batchArg(mb.id, k)
	if _, err := chaos.CallResumed(mb.m, "serve_batch", n, arg); err != nil {
		mb.fault(fmt.Errorf("serve_batch round %d: %w", k, err))
		return false
	}
	mb.sh.cRequests.Add(n)
	mb.sh.cBatches.Add(1)
	return true
}

// probe is the supervisor's liveness check: a guest call that must
// come back with the magic value within the step budget.
func (mb *member) probe() bool {
	v, err := chaos.CallResumed(mb.m, "health")
	if err != nil {
		mb.fault(fmt.Errorf("health probe: %w", err))
		return false
	}
	if v != healthOK {
		mb.fault(fmt.Errorf("health probe returned %d, want %d", v, healthOK))
		return false
	}
	return true
}

// checkpoint captures the member's recovery point: machine snapshot,
// fault-plan progress, parked flag. A capture racing an open commit
// gets the typed ErrNotQuiesced and simply keeps the previous
// checkpoint — retry-later, not corruption.
func (mb *member) checkpoint(round int) error {
	snap, err := snapshot.Capture(mb.m, mb.rt)
	if errors.Is(err, snapshot.ErrNotQuiesced) {
		mb.snapSkipped++
		return nil
	}
	if err != nil {
		return fmt.Errorf("fleet: machine %d checkpoint: %w", mb.id, err)
	}
	ck := &checkpoint{round: round, snap: snap.Encode(), parked: mb.parked}
	if mb.plan != nil {
		ck.plan = mb.plan.Export()
	}
	mb.ckpt = ck
	mb.sh.cSnapshots.Add(1)
	return nil
}

// stormThenDie models a power cut mid-commit: the storm's switch
// writes land, the commit starts (consuming whatever fault points it
// trips), and the machine dies before anyone can observe the outcome.
// The incarnation is discarded wholesale; commits are transactional,
// so the snapshot-restored replay re-runs the storm cleanly.
func (mb *member) stormThenDie(k int) {
	comp, iso := mb.fl.cfg.flipValues(k)
	if err := mb.writeSwitches(comp, iso); err == nil {
		_ = mb.commitObserved()
	}
	mb.syncLedger()
	mb.die()
}

// dieMidBatch starts the round's batch, lets it run a deterministic
// slice, and cuts the power with requests in flight.
func (mb *member) dieMidBatch(k int) {
	n := mb.fl.cfg.batchSize(mb.id, k)
	arg := mb.fl.cfg.batchArg(mb.id, k)
	if err := mb.m.StartCall(mb.m.CPU, "serve_batch", n, arg); err == nil {
		for i := 0; i < midBatchSteps && !mb.m.CPU.Halted(); i++ {
			if err := mb.m.CPU.Step(); err != nil && !chaos.IsInjectedFetchFault(err) {
				break
			}
		}
	}
	mb.syncLedger()
	mb.die()
}

// die is a chaos kill: the incarnation vanishes. The supervisor picks
// the member up from its last checkpoint.
func (mb *member) die() {
	mb.killsTaken++
	mb.sh.cKills.Add(1)
	mb.sh.killsSinceEpoch++
	mb.discard()
}

// fault is an unexpected machine failure (wedge, failed probe,
// non-transient injected fault escaping the commit path): same
// recovery as a kill, separate accounting. The cause is kept for the
// report should the member later exhaust its restarts.
func (mb *member) fault(err error) {
	mb.sh.cFaults.Add(1)
	mb.lastFault = err
	mb.discard()
}

// fail is a non-recoverable supervisor error (checkpoint encode,
// switch I/O): the member is taken out of rotation and reported.
func (mb *member) fail(err error) {
	if mb.err == nil {
		mb.err = err
	}
	mb.state = stateFailed
	mb.discard()
	mb.m, mb.rt = nil, nil
}

func (mb *member) discard() {
	if mb.m != nil && mb.plan != nil {
		faultinject.Detach(mb.m)
	}
	mb.m, mb.rt = nil, nil
	if mb.state != stateFailed {
		mb.state = stateDown
	}
	mb.restartAttempts = 0
	mb.backoffReadyAt = 0
}

// tryRestart is the supervisor's restore path: bounded attempts, each
// failure backing off exponentially in the shard's simulated-cycle
// ledger before the next try.
func (mb *member) tryRestart() bool {
	if mb.sh.cycles < mb.backoffReadyAt {
		return false
	}
	if err := mb.restore(); err != nil {
		mb.restartAttempts++
		if mb.restartAttempts >= mb.fl.cfg.RestartRetries {
			why := fmt.Errorf("fleet: machine %d: restart abandoned after %d attempts: %w",
				mb.id, mb.restartAttempts, err)
			if mb.lastFault != nil {
				why = fmt.Errorf("%w (went down with: %v)", why, mb.lastFault)
			}
			mb.fail(why)
			return false
		}
		mb.backoffReadyAt = mb.sh.cycles + restartBackoff(mb.restartAttempts)
		return false
	}
	mb.state = stateHealthy
	mb.restartAttempts = 0
	mb.backoffReadyAt = 0
	mb.restarts++
	mb.sh.cRestarts.Add(1)
	return true
}

// restore rebuilds a fresh incarnation from the last checkpoint:
// decode, Apply onto a new machine+runtime from the same image,
// re-attach the fault plan and rewind its progress to the checkpoint
// (replayed rounds must re-fire the same faults), rewind the parked
// flag, and point the timeline at the first lost round.
func (mb *member) restore() error {
	if mb.ckpt == nil {
		return fmt.Errorf("fleet: machine %d has no checkpoint", mb.id)
	}
	if hook := mb.fl.cfg.restoreHook; hook != nil {
		if err := hook(mb.id, mb.restartAttempts); err != nil {
			return err
		}
	}
	snap, err := snapshot.Decode(mb.ckpt.snap)
	if err != nil {
		return err
	}
	if err := mb.incarnate(); err != nil {
		return err
	}
	if err := snapshot.Apply(snap, mb.m, mb.rt); err != nil {
		mb.m, mb.rt = nil, nil
		return err
	}
	if mb.plan != nil {
		mb.plan.Attach(mb.m)
		if err := mb.plan.Import(mb.ckpt.plan); err != nil {
			mb.m, mb.rt = nil, nil
			return err
		}
	}
	mb.parked = mb.ckpt.parked
	mb.nextRound = mb.ckpt.round + 1
	mb.lastCycles = mb.m.CPU.Cycles()
	return nil
}

func (mb *member) readSwitch(name string) (int64, error) {
	v, err := mb.m.ReadGlobal(name, 4)
	return int64(int32(uint32(v))), err
}

func (mb *member) writeSwitches(comp, iso int64) error {
	if err := mb.m.WriteGlobal("compression", 4, uint64(comp)); err != nil {
		return err
	}
	return mb.m.WriteGlobal("isolated", 4, uint64(iso))
}

// Backoff curves, both in the simulated-cycle domain (cf. the commit
// journal's patch-retry backoff): base doubling per attempt, capped.
const (
	commitBackoffBase  = 200
	commitBackoffCap   = 1 << 14
	restartBackoffBase = 1 << 10
	restartBackoffCap  = 1 << 18
	midBatchSteps      = 1500
	parkBudget         = 50_000
)

func commitBackoff(attempt int) uint64 {
	b := uint64(commitBackoffBase) << uint(attempt)
	if b > commitBackoffCap {
		return commitBackoffCap
	}
	return b
}

func restartBackoff(attempt int) uint64 {
	b := uint64(restartBackoffBase) << uint(attempt)
	if b > restartBackoffCap {
		return restartBackoffCap
	}
	return b
}

// memberTracer feeds the runtime's rendezvous events into the shard
// and fleet latency histograms; everything else is dropped. The
// interpreter-side hooks are never wired, so the hot path stays
// untouched.
type memberTracer struct{ mb *member }

func (t *memberTracer) Emit(k trace.Kind, addr, a, b uint64) {
	if k == trace.KindRendezvous {
		t.mb.sh.hRendezvous.Observe(a)
		t.mb.fl.hRendezvous.Observe(a)
	}
}

func (t *memberTracer) EmitName(k trace.Kind, addr, a, b uint64, name string) {
	t.Emit(k, addr, a, b)
}

func (t *memberTracer) Step(pc, cycles uint64) {}
func (t *memberTracer) Call(pc, target uint64) {}
func (t *memberTracer) Ret(pc, target uint64)  {}
