package fleet

import (
	"repro/internal/metrics"
)

// shard is one host goroutine's worth of fleet: a set of members, a
// simulated-cycle ledger (the clock restart backoff waits on), and a
// private metrics registry the fleet root merges under a shard label.
//
// A shard's state is only ever touched by the goroutine executing its
// current round; the coordinator's round barrier is the only
// cross-shard synchronisation, so there are no locks in the data
// path and per-shard execution is bit-reproducible.
type shard struct {
	idx     int
	fl      *Fleet
	members []*member

	// cycles is the shard's simulated-cycle ledger: the sum of cycles
	// its members' CPUs have consumed, plus a per-round baseline tick
	// so time still passes on a shard whose only member is down.
	cycles uint64

	// killsSinceEpoch feeds the migration policy: the coordinator
	// evacuates a member away from the shard taking the most kills.
	killsSinceEpoch int

	reg *metrics.Registry

	cRequests      *metrics.Counter
	cBatches       *metrics.Counter
	cStormFlips    *metrics.Counter
	cCommitAborts  *metrics.Counter
	cCommitRetries *metrics.Counter
	cParkedFlips   *metrics.Counter
	cOSRCommits    *metrics.Counter
	cOSRTransfers  *metrics.Counter
	cKills         *metrics.Counter
	cFaults        *metrics.Counter
	cRestarts      *metrics.Counter
	cSnapshots     *metrics.Counter
	cMigrationsIn  *metrics.Counter
	cMigrationsOut *metrics.Counter
	gDegraded      *metrics.Gauge
	gMachines      *metrics.Gauge
	hCommit        *metrics.Histogram
	hRendezvous    *metrics.Histogram
}

// baselineTick is the simulated time one fleet round represents on a
// shard independent of guest execution: it keeps the restart-backoff
// clock moving even when every member of the shard is down.
const baselineTick = 512

func newShard(idx int, fl *Fleet) *shard {
	sh := &shard{idx: idx, fl: fl, reg: metrics.New()}
	sh.cRequests = sh.reg.Counter("fleet_requests_total", "requests served (including replayed rounds)")
	sh.cBatches = sh.reg.Counter("fleet_batches_total", "load-generator batches completed")
	sh.cStormFlips = sh.reg.Counter("fleet_storm_flips_total", "config-flip storms attempted on a machine")
	sh.cCommitAborts = sh.reg.Counter("fleet_commit_aborts_total", "commits refused or rolled back during storms")
	sh.cCommitRetries = sh.reg.Counter("fleet_commit_retries_total", "storm commits retried after backoff")
	sh.cParkedFlips = sh.reg.Counter("fleet_parked_flips_total", "storm flips parked after retry exhaustion")
	sh.cOSRCommits = sh.reg.Counter("fleet_osr_commits_total", "storm commits landed via on-stack-replacement escalation")
	sh.cOSRTransfers = sh.reg.Counter("fleet_osr_transfers_total", "live frames transferred into new variants during storms")
	sh.cKills = sh.reg.Counter("fleet_kills_total", "chaos machine kills taken")
	sh.cFaults = sh.reg.Counter("fleet_faults_total", "machine faults (wedges, failed probes)")
	sh.cRestarts = sh.reg.Counter("fleet_restarts_total", "machines restarted from snapshot")
	sh.cSnapshots = sh.reg.Counter("fleet_snapshots_total", "periodic checkpoints captured")
	sh.cMigrationsIn = sh.reg.Counter("fleet_migrations_in_total", "machines migrated into this shard")
	sh.cMigrationsOut = sh.reg.Counter("fleet_migrations_out_total", "machines migrated out of this shard")
	sh.gDegraded = sh.reg.Gauge("fleet_degraded_machines", "machines serving a parked (old-variant) config")
	sh.gMachines = sh.reg.Gauge("fleet_machines", "machines currently homed on this shard")
	sh.hCommit = sh.reg.Histogram("fleet_commit_latency_cycles", "modeled commit latency per storm attempt")
	sh.hRendezvous = sh.reg.Histogram("fleet_rendezvous_latency_cycles", "stop-machine rendezvous latency")
	return sh
}

// runRound advances every member of the shard to global round r and
// refreshes the shard gauges. Members execute in id order — member
// order is part of the deterministic contract, so migration inserts
// keep the slice sorted.
func (sh *shard) runRound(r int) {
	sh.cycles += baselineTick
	for _, mb := range sh.members {
		mb.advanceTo(r)
	}
	sh.refreshGauges()
}

func (sh *shard) refreshGauges() {
	degraded := 0
	for _, mb := range sh.members {
		if mb.parked && mb.state != stateFailed {
			degraded++
		}
	}
	sh.gDegraded.Set(float64(degraded))
	sh.gMachines.Set(float64(len(sh.members)))
}

// take removes member mb from the shard; insert homes it, keeping the
// members slice in id order.
func (sh *shard) take(mb *member) {
	for i, m := range sh.members {
		if m == mb {
			sh.members = append(sh.members[:i], sh.members[i+1:]...)
			return
		}
	}
}

func (sh *shard) insert(mb *member) {
	i := len(sh.members)
	for j, m := range sh.members {
		if m.id > mb.id {
			i = j
			break
		}
	}
	sh.members = append(sh.members, nil)
	copy(sh.members[i+1:], sh.members[i:])
	sh.members[i] = mb
	mb.sh = sh
}
