package link

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/mem"
)

// imgMagic identifies serialized image files.
var imgMagic = [8]byte{'M', 'V', 'I', 'M', 'G', '0', '0', '1'}

// Write serializes the image to out.
func (img *Image) Write(out io.Writer) error {
	w := bufio.NewWriter(out)
	var err error
	put := func(b []byte) {
		if err == nil {
			_, err = w.Write(b)
		}
	}
	u64 := func(v uint64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		put(buf[:])
	}
	str := func(s string) { u64(uint64(len(s))); put([]byte(s)) }

	put(imgMagic[:])
	u64(img.Entry)
	u64(img.HaltAddr)
	u64(uint64(len(img.Segments)))
	for _, s := range img.Segments {
		u64(s.Addr)
		u64(uint64(s.Prot))
		u64(uint64(len(s.Data)))
		put(s.Data)
	}
	// Maps are written in sorted order for deterministic output.
	symNames := make([]string, 0, len(img.Symbols))
	for n := range img.Symbols {
		symNames = append(symNames, n)
	}
	sort.Strings(symNames)
	u64(uint64(len(symNames)))
	for _, n := range symNames {
		str(n)
		u64(img.Symbols[n].Addr)
		u64(img.Symbols[n].Size)
	}
	secNames := make([]string, 0, len(img.Sections))
	for n := range img.Sections {
		secNames = append(secNames, n)
	}
	sort.Strings(secNames)
	u64(uint64(len(secNames)))
	for _, n := range secNames {
		str(n)
		u64(img.Sections[n].Addr)
		u64(img.Sections[n].Size)
	}
	if err != nil {
		return err
	}
	return w.Flush()
}

// ReadImage deserializes an image from in.
func ReadImage(in io.Reader) (*Image, error) {
	r := bufio.NewReader(in)
	var err error
	get := func(n uint64) []byte {
		if err != nil {
			return nil
		}
		if n > 1<<30 {
			err = fmt.Errorf("link: implausible length %d", n)
			return nil
		}
		b := make([]byte, n)
		_, err = io.ReadFull(r, b)
		return b
	}
	u64 := func() uint64 {
		b := get(8)
		if err != nil {
			return 0
		}
		return binary.LittleEndian.Uint64(b)
	}
	str := func() string { return string(get(u64())) }

	magic := get(8)
	if err != nil {
		return nil, err
	}
	if string(magic) != string(imgMagic[:]) {
		return nil, fmt.Errorf("link: bad image magic %q", magic)
	}
	img := &Image{
		Symbols:  make(map[string]SymbolInfo),
		Sections: make(map[string]Range),
	}
	img.Entry = u64()
	img.HaltAddr = u64()
	nseg := u64()
	for i := uint64(0); i < nseg && err == nil; i++ {
		var s Segment
		s.Addr = u64()
		s.Prot = mem.Prot(u64())
		s.Data = get(u64())
		img.Segments = append(img.Segments, s)
	}
	nsym := u64()
	for i := uint64(0); i < nsym && err == nil; i++ {
		n := str()
		img.Symbols[n] = SymbolInfo{Addr: u64(), Size: u64()}
	}
	nsec := u64()
	for i := uint64(0); i < nsec && err == nil; i++ {
		n := str()
		img.Sections[n] = Range{Addr: u64(), Size: u64()}
	}
	if err != nil {
		return nil, err
	}
	return img, nil
}
