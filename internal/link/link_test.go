package link

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/isa"
	"repro/internal/obj"
)

// buildCaller returns an object whose main calls the external symbol
// "callee" and returns its result plus the 32-bit global "g" defined
// here.
func buildCaller() *obj.Object {
	o := obj.New("caller.c")
	var a isa.Asm
	// main:
	callAt := a.Len()
	a.Call(0) // -> callee (reloc)
	moviAt := a.Len()
	a.Movi(1, 0) // r1 = &g (reloc)
	a.Ld(1, 1, 4, 0)
	a.Alu(isa.ADD, 0, 1)
	a.Ret()
	text := o.Section(obj.SecText)
	text.Data = a.Bytes()

	data := o.Section(obj.SecData)
	data.Data = binary.LittleEndian.AppendUint32(nil, 100)

	o.AddSymbol(obj.Symbol{Name: "main", Section: obj.SecText, Offset: 0, Size: uint64(a.Len()), Global: true})
	o.AddSymbol(obj.Symbol{Name: "g", Section: obj.SecData, Offset: 0, Size: 4, Global: true})
	o.AddReloc(obj.Reloc{Section: obj.SecText, Offset: uint64(callAt) + 1, Type: obj.RelocRel32, Symbol: "callee"})
	o.AddReloc(obj.Reloc{Section: obj.SecText, Offset: uint64(moviAt) + 2, Type: obj.RelocAbs64, Symbol: "g"})
	return o
}

// buildCallee returns an object defining callee() { return 7; } and a
// 32-byte contribution to the multiverse.variables section whose first
// field is &g (an Abs64 reloc into another unit's data).
func buildCallee() *obj.Object {
	o := obj.New("callee.c")
	var a isa.Asm
	a.Movi(0, 7)
	a.Ret()
	o.Section(obj.SecText).Data = a.Bytes()
	o.AddSymbol(obj.Symbol{Name: "callee", Section: obj.SecText, Offset: 0, Size: uint64(a.Len()), Global: true})

	vars := o.Section(obj.SecMVVars)
	vars.Data = make([]byte, 32)
	o.AddReloc(obj.Reloc{Section: obj.SecMVVars, Offset: 0, Type: obj.RelocAbs64, Symbol: "g"})
	return o
}

func TestLinkAndRelocate(t *testing.T) {
	img, err := Link(buildCaller(), buildCallee())
	if err != nil {
		t.Fatal(err)
	}
	if img.Entry == 0 {
		t.Fatal("no entry point")
	}
	if img.Entry != img.Symbols["main"].Addr {
		t.Error("entry != main")
	}
	if img.HaltAddr != TextBase {
		t.Errorf("halt stub at %#x, want %#x", img.HaltAddr, TextBase)
	}
	// main must come after the halt stub.
	if img.Symbols["main"].Addr != TextBase+HaltStubLen {
		t.Errorf("main at %#x, want %#x", img.Symbols["main"].Addr, TextBase+HaltStubLen)
	}

	// The rel32 in main must point at callee.
	text := img.Segments[0]
	mainOff := img.Symbols["main"].Addr - text.Addr
	rel := int32(binary.LittleEndian.Uint32(text.Data[mainOff+1:]))
	target := img.Symbols["main"].Addr + isa.CallSiteLen + uint64(rel)
	if target != img.Symbols["callee"].Addr {
		t.Errorf("call target = %#x, want callee %#x", target, img.Symbols["callee"].Addr)
	}

	// The descriptor's Abs64 must hold &g.
	mvRange, ok := img.Sections[obj.SecMVVars]
	if !ok {
		t.Fatal("multiverse.variables section missing from image")
	}
	var roSeg *Segment
	for i := range img.Segments {
		s := &img.Segments[i]
		if mvRange.Addr >= s.Addr && mvRange.Addr < s.Addr+uint64(len(s.Data)) {
			roSeg = s
		}
	}
	if roSeg == nil {
		t.Fatal("descriptor section not inside any segment")
	}
	got := binary.LittleEndian.Uint64(roSeg.Data[mvRange.Addr-roSeg.Addr:])
	if got != img.Symbols["g"].Addr {
		t.Errorf("descriptor field = %#x, want &g = %#x", got, img.Symbols["g"].Addr)
	}
}

func TestSectionConcatenationAcrossUnits(t *testing.T) {
	mk := func(name string, fill byte) *obj.Object {
		o := obj.New(name)
		s := o.Section(obj.SecMVVars)
		s.Data = bytes.Repeat([]byte{fill}, 32)
		// Objects need at least one placed symbol-free text to exist;
		// an empty text section is fine.
		o.Section(obj.SecText)
		return o
	}
	img, err := Link(mk("a.c", 0xAA), mk("b.c", 0xBB), mk("c.c", 0xCC))
	if err != nil {
		t.Fatal(err)
	}
	r := img.Sections[obj.SecMVVars]
	if r.Size != 96 {
		t.Fatalf("concatenated size = %d, want 96", r.Size)
	}
	var seg *Segment
	for i := range img.Segments {
		s := &img.Segments[i]
		if r.Addr >= s.Addr && r.Addr < s.Addr+uint64(len(s.Data)) {
			seg = s
		}
	}
	data := seg.Data[r.Addr-seg.Addr : r.Addr-seg.Addr+r.Size]
	for i, want := range []byte{0xAA, 0xBB, 0xCC} {
		for j := 0; j < 32; j++ {
			if data[i*32+j] != want {
				t.Fatalf("unit %d byte %d = %#x, want %#x (input order not preserved)", i, j, data[i*32+j], want)
			}
		}
	}
}

func TestBSSAllocatedAndZeroed(t *testing.T) {
	o := obj.New("bss.c")
	o.Section(obj.SecText)
	b := o.Section(obj.SecBSS)
	b.Size = 4096
	o.AddSymbol(obj.Symbol{Name: "buf", Section: obj.SecBSS, Offset: 0, Size: 4096, Global: true})
	img, err := Link(o)
	if err != nil {
		t.Fatal(err)
	}
	sym := img.Symbols["buf"]
	if sym.Addr == 0 {
		t.Fatal("buf not placed")
	}
	r := img.Sections[obj.SecBSS]
	if r.Size != 4096 {
		t.Errorf("bss size = %d", r.Size)
	}
}

func TestUndefinedSymbolFails(t *testing.T) {
	o := obj.New("u.c")
	var a isa.Asm
	a.Call(0)
	o.Section(obj.SecText).Data = a.Bytes()
	o.AddReloc(obj.Reloc{Section: obj.SecText, Offset: 1, Type: obj.RelocRel32, Symbol: "missing"})
	if _, err := Link(o); err == nil {
		t.Error("undefined symbol linked")
	}
}

func TestDuplicateGlobalFails(t *testing.T) {
	mk := func(name string) *obj.Object {
		o := obj.New(name)
		var a isa.Asm
		a.Ret()
		o.Section(obj.SecText).Data = a.Bytes()
		o.AddSymbol(obj.Symbol{Name: "f", Section: obj.SecText, Offset: 0, Global: true})
		return o
	}
	if _, err := Link(mk("a.c"), mk("b.c")); err == nil {
		t.Error("duplicate global linked")
	}
}

func TestLocalSymbolsDoNotCollide(t *testing.T) {
	mk := func(name string, val int64) *obj.Object {
		o := obj.New(name)
		var a isa.Asm
		a.Movi(0, val)
		a.Ret()
		o.Section(obj.SecText).Data = a.Bytes()
		o.AddSymbol(obj.Symbol{Name: "local_helper", Section: obj.SecText, Offset: 0, Global: false})
		return o
	}
	if _, err := Link(mk("a.c", 1), mk("b.c", 2)); err != nil {
		t.Errorf("local symbols collided: %v", err)
	}
}

func TestLocalResolutionPrefersOwnUnit(t *testing.T) {
	// Unit A has a local "h" and calls it; unit B exports a global "h".
	// A's call must bind to its own local.
	a := obj.New("a.c")
	var asmA isa.Asm
	callAt := asmA.Len()
	asmA.Call(0)
	asmA.Ret()
	hA := asmA.Len()
	asmA.Movi(0, 111)
	asmA.Ret()
	a.Section(obj.SecText).Data = asmA.Bytes()
	a.AddSymbol(obj.Symbol{Name: "entry", Section: obj.SecText, Offset: 0, Global: true})
	a.AddSymbol(obj.Symbol{Name: "h", Section: obj.SecText, Offset: uint64(hA), Global: false})
	a.AddReloc(obj.Reloc{Section: obj.SecText, Offset: uint64(callAt) + 1, Type: obj.RelocRel32, Symbol: "h"})

	b := obj.New("b.c")
	var asmB isa.Asm
	asmB.Movi(0, 222)
	asmB.Ret()
	b.Section(obj.SecText).Data = asmB.Bytes()
	b.AddSymbol(obj.Symbol{Name: "h", Section: obj.SecText, Offset: 0, Global: true})

	img, err := Link(a, b)
	if err != nil {
		t.Fatal(err)
	}
	text := img.Segments[0]
	entry := img.Symbols["entry"].Addr
	rel := int32(binary.LittleEndian.Uint32(text.Data[entry-text.Addr+uint64(callAt)+1:]))
	target := entry + uint64(callAt) + isa.CallSiteLen + uint64(rel)
	wantLocal := entry + uint64(hA)
	if target != wantLocal {
		t.Errorf("call bound to %#x, want local h at %#x (global h at %#x)",
			target, wantLocal, img.Symbols["h"].Addr)
	}
}

func TestSegmentProtections(t *testing.T) {
	img, err := Link(buildCaller(), buildCallee())
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Segments) < 3 {
		t.Fatalf("segments = %d, want >= 3", len(img.Segments))
	}
	if img.Segments[0].Prot.String() != "r-x" {
		t.Errorf("text prot = %v", img.Segments[0].Prot)
	}
	// Segments must not overlap and must be ordered.
	for i := 1; i < len(img.Segments); i++ {
		prev, cur := img.Segments[i-1], img.Segments[i]
		if prev.Addr+uint64(len(prev.Data)) > cur.Addr {
			t.Errorf("segments %d and %d overlap", i-1, i)
		}
	}
}

func TestNoInputs(t *testing.T) {
	if _, err := Link(); err == nil {
		t.Error("Link() with no objects succeeded")
	}
}

func TestImageFileRoundTrip(t *testing.T) {
	img, err := Link(buildCaller(), buildCallee())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := img.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entry != img.Entry || got.HaltAddr != img.HaltAddr {
		t.Error("entry/halt differ")
	}
	if len(got.Segments) != len(img.Segments) {
		t.Fatal("segment count differs")
	}
	for i := range img.Segments {
		if got.Segments[i].Addr != img.Segments[i].Addr ||
			got.Segments[i].Prot != img.Segments[i].Prot ||
			!bytes.Equal(got.Segments[i].Data, img.Segments[i].Data) {
			t.Errorf("segment %d differs", i)
		}
	}
	if len(got.Symbols) != len(img.Symbols) || len(got.Sections) != len(img.Sections) {
		t.Error("symbol/section tables differ")
	}
	if _, err := ReadImage(bytes.NewReader([]byte("garbage!"))); err == nil {
		t.Error("bad image magic accepted")
	}
}

func TestSymbolAt(t *testing.T) {
	img, err := Link(buildCaller(), buildCallee())
	if err != nil {
		t.Fatal(err)
	}
	name, ok := img.SymbolAt(img.Symbols["callee"].Addr + 2)
	if !ok || name != "callee" {
		t.Errorf("SymbolAt inside callee = %q, %v", name, ok)
	}
	if _, ok := img.SymbolAt(0xdead0000); ok {
		t.Error("SymbolAt on garbage address succeeded")
	}
}

func TestRangeContains(t *testing.T) {
	r := Range{Addr: 100, Size: 10}
	if !r.Contains(100) || !r.Contains(109) || r.Contains(110) || r.Contains(99) {
		t.Error("Range.Contains boundaries wrong")
	}
}
