// Package link combines relocatable objects into an executable image.
//
// The linker concatenates same-named sections across translation units
// in input order — the mechanism the multiverse descriptor design
// relies on (paper §5): each unit contributes descriptor records to
// the multiverse.* sections and the concatenation forms one contiguous
// array per descriptor type. Address-of fields inside descriptors are
// ordinary Abs64 relocations, resolved here.
package link

import (
	"encoding/binary"
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/obj"
)

// Memory layout constants.
const (
	// TextBase is the load address of the text segment. The first
	// instruction is always the linker-synthesized halt stub.
	TextBase = uint64(0x400000)
	// segGap is the unmapped guard space between segments.
	segGap = uint64(mem.PageSize)
	// HaltStubLen is the size of the synthesized halt stub that
	// precedes all program text.
	HaltStubLen = uint64(16)
)

// SymbolInfo describes a linked symbol.
type SymbolInfo struct {
	Addr uint64
	Size uint64
}

// Range is a linked section's location in memory.
type Range struct {
	Addr uint64
	Size uint64
}

// Contains reports whether addr falls inside the range.
func (r Range) Contains(addr uint64) bool {
	return addr >= r.Addr && addr < r.Addr+r.Size
}

// Segment is a loadable chunk of the image.
type Segment struct {
	Addr uint64
	Data []byte // run-time size (includes zeroed NoBits space)
	Prot mem.Prot
}

// Image is a linked, loadable program.
type Image struct {
	Segments []Segment
	Symbols  map[string]SymbolInfo
	Sections map[string]Range
	// Entry is the address of symbol "main", or 0 if undefined.
	Entry uint64
	// HaltAddr is the address of the synthesized HLT stub. A harness
	// calls a function by pushing HaltAddr as the return address.
	HaltAddr uint64
}

// SymbolAt returns the name of the symbol covering addr, if any.
func (img *Image) SymbolAt(addr uint64) (string, bool) {
	for name, s := range img.Symbols {
		if s.Size > 0 && addr >= s.Addr && addr < s.Addr+s.Size {
			return name, true
		}
	}
	return "", false
}

type concatSection struct {
	name   string
	flags  obj.SectionFlags
	align  uint64
	size   uint64
	data   []byte // nil for NoBits
	pieces map[int]uint64
}

// Options configures linking.
type Options struct {
	// Base is the load address of the text segment (default TextBase).
	// Dynamically loaded modules link at a disjoint base.
	Base uint64
	// Externs resolves symbols not defined by any input object —
	// typically the exported symbols of an already loaded main image,
	// like a kernel module resolving kernel symbols.
	Externs map[string]SymbolInfo
}

// Link combines the objects into an image at the default base.
func Link(objects ...*obj.Object) (*Image, error) {
	return LinkWithOptions(Options{}, objects...)
}

// LinkWithOptions combines the objects into an image.
func LinkWithOptions(opts Options, objects ...*obj.Object) (*Image, error) {
	if len(objects) == 0 {
		return nil, fmt.Errorf("link: no input objects")
	}
	base := opts.Base
	if base == 0 {
		base = TextBase
	}
	if base%0x1000 != 0 {
		return nil, fmt.Errorf("link: base %#x not page-aligned", base)
	}
	for _, o := range objects {
		if err := o.Validate(); err != nil {
			return nil, err
		}
	}

	// 1. Concatenate sections by name, in input order.
	var order []string
	concat := make(map[string]*concatSection)
	for i, o := range objects {
		for _, s := range o.Sections {
			cs, ok := concat[s.Name]
			if !ok {
				cs = &concatSection{
					name:   s.Name,
					flags:  s.Flags,
					align:  1,
					pieces: make(map[int]uint64),
				}
				concat[s.Name] = cs
				order = append(order, s.Name)
			}
			if cs.flags != s.Flags {
				return nil, fmt.Errorf("link: section %q has conflicting flags across units", s.Name)
			}
			align := s.Align
			if align == 0 {
				align = 1
			}
			if align > cs.align {
				cs.align = align
			}
			cs.size = alignUp(cs.size, align)
			cs.pieces[i] = cs.size
			cs.size += s.ByteSize()
		}
	}
	for _, name := range order {
		cs := concat[name]
		if cs.flags&obj.SecFlagNoBits == 0 {
			cs.data = make([]byte, cs.size)
			for i, o := range objects {
				off, ok := cs.pieces[i]
				if !ok {
					continue
				}
				for _, s := range o.Sections {
					if s.Name == name {
						copy(cs.data[off:], s.Data)
					}
				}
			}
		}
	}

	// 2. Lay out segments: text (r-x), read-only (r--), data (rw-).
	img := &Image{
		Symbols:  make(map[string]SymbolInfo),
		Sections: make(map[string]Range),
		HaltAddr: base,
	}
	classify := func(cs *concatSection) int {
		switch {
		case cs.flags&obj.SecFlagExec != 0:
			return 0
		case cs.flags&obj.SecFlagWrite == 0:
			return 1
		default:
			return 2
		}
	}
	sectionAddr := make(map[string]uint64)

	// The text segment begins with the halt stub.
	var haltStub isa.Asm
	haltStub.Hlt()
	haltStub.Nop(int(HaltStubLen) - haltStub.Len())

	addr := base
	for class := 0; class < 3; class++ {
		var segData []byte
		segBase := addr
		if class == 0 {
			segData = append(segData, haltStub.Bytes()...)
		}
		for _, name := range order {
			cs := concat[name]
			if classify(cs) != class {
				continue
			}
			off := alignUp(uint64(len(segData)), cs.align)
			segData = append(segData, make([]byte, off-uint64(len(segData)))...)
			sectionAddr[name] = segBase + off
			img.Sections[name] = Range{Addr: segBase + off, Size: cs.size}
			if cs.data != nil {
				segData = append(segData, cs.data...)
			} else {
				segData = append(segData, make([]byte, cs.size)...)
			}
		}
		if class == 0 || len(segData) > 0 {
			prot := [3]mem.Prot{mem.RX, mem.Read, mem.RW}[class]
			img.Segments = append(img.Segments, Segment{Addr: segBase, Data: segData, Prot: prot})
			addr = segBase + mem.PageAlignUp(uint64(len(segData))) + segGap
		}
	}

	// 3. Build the symbol table.
	// Global symbols live in one namespace; locals are per-object.
	locals := make([]map[string]SymbolInfo, len(objects))
	definedBy := make(map[string]string) // global name -> object name
	for i, o := range objects {
		locals[i] = make(map[string]SymbolInfo)
		for _, sym := range o.Symbols {
			if sym.Section == "" {
				continue // reference only
			}
			cs := concat[sym.Section]
			base, ok := sectionAddr[sym.Section]
			if !ok {
				return nil, fmt.Errorf("link: %s: symbol %q in unplaced section %q", o.Name, sym.Name, sym.Section)
			}
			info := SymbolInfo{Addr: base + cs.pieces[i] + sym.Offset, Size: sym.Size}
			locals[i][sym.Name] = info
			if sym.Global {
				if prev, dup := definedBy[sym.Name]; dup {
					return nil, fmt.Errorf("link: symbol %q defined in both %s and %s", sym.Name, prev, o.Name)
				}
				definedBy[sym.Name] = o.Name
				img.Symbols[sym.Name] = info
			}
		}
	}

	// 4. Apply relocations.
	segFor := func(a uint64) *Segment {
		for i := range img.Segments {
			s := &img.Segments[i]
			if a >= s.Addr && a < s.Addr+uint64(len(s.Data)) {
				return s
			}
		}
		return nil
	}
	for i, o := range objects {
		for _, r := range o.Relocs {
			target, ok := locals[i][r.Symbol]
			if !ok {
				target, ok = img.Symbols[r.Symbol]
			}
			if !ok && opts.Externs != nil {
				target, ok = opts.Externs[r.Symbol]
			}
			if !ok {
				return nil, fmt.Errorf("link: %s: undefined symbol %q", o.Name, r.Symbol)
			}
			cs := concat[r.Section]
			fieldAddr := sectionAddr[r.Section] + cs.pieces[i] + r.Offset
			seg := segFor(fieldAddr)
			if seg == nil {
				return nil, fmt.Errorf("link: %s: relocation at %#x outside all segments", o.Name, fieldAddr)
			}
			fo := fieldAddr - seg.Addr
			switch r.Type {
			case obj.RelocRel32:
				v := int64(target.Addr) + r.Addend - int64(fieldAddr+4)
				if v != int64(int32(v)) {
					return nil, fmt.Errorf("link: %s: rel32 to %q out of range (%#x)", o.Name, r.Symbol, v)
				}
				binary.LittleEndian.PutUint32(seg.Data[fo:], uint32(int32(v)))
			case obj.RelocAbs64:
				binary.LittleEndian.PutUint64(seg.Data[fo:], uint64(int64(target.Addr)+r.Addend))
			default:
				return nil, fmt.Errorf("link: %s: unknown relocation type %v", o.Name, r.Type)
			}
		}
	}

	if main, ok := img.Symbols["main"]; ok {
		img.Entry = main.Addr
	}
	return img, nil
}

func alignUp(v, align uint64) uint64 {
	if align <= 1 {
		return v
	}
	return (v + align - 1) &^ (align - 1)
}
