// Package mvir implements the mid-level program transformations of the
// multiverse compiler: function cloning, configuration-switch
// substitution, and the optimization passes that specialize variants
// (constant folding, branch pruning, local constant propagation,
// unreachable-code and dead-store elimination).
//
// It mirrors the paper's §3 pipeline: variants are cloned from the
// generic body, every read of a configuration switch is replaced by a
// constant *before* optimization, and the optimizer then shrinks each
// clone; bodies that become identical are merged by the variant
// generator (package core) using a canonical fingerprint.
package mvir

import (
	"fmt"

	"repro/internal/cc"
)

// CloneFunc deep-copies a function definition. Local and parameter
// symbols are re-created (so clones can be transformed independently);
// global symbols stay shared with the original unit.
func CloneFunc(f *cc.FuncDecl) *cc.FuncDecl {
	c := &cloner{syms: make(map[*cc.VarSym]*cc.VarSym)}
	out := &cc.FuncDecl{
		P:          f.P,
		Name:       f.Name,
		Sym:        f.Sym,
		Ret:        f.Ret,
		Multiverse: f.Multiverse,
		BindOnly:   append([]string(nil), f.BindOnly...),
		NoScratch:  f.NoScratch,
		Static:     f.Static,
	}
	for _, p := range f.Params {
		out.Params = append(out.Params, c.sym(p))
	}
	if f.Body != nil {
		out.Body = c.stmt(f.Body).(*cc.Block)
	}
	return out
}

type cloner struct {
	syms map[*cc.VarSym]*cc.VarSym
}

func (c *cloner) sym(s *cc.VarSym) *cc.VarSym {
	if s == nil {
		return nil
	}
	if s.Storage != cc.StorageLocal && s.Storage != cc.StorageParam {
		return s // globals, statics and functions are shared
	}
	if n, ok := c.syms[s]; ok {
		return n
	}
	n := &cc.VarSym{}
	*n = *s
	c.syms[s] = n
	return n
}

func (c *cloner) expr(e cc.Expr) cc.Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *cc.IntLit:
		n := *e
		return &n
	case *cc.StrLit:
		n := *e
		return &n
	case *cc.VarRef:
		n := *e
		n.Sym = c.sym(e.Sym)
		return &n
	case *cc.Unary:
		n := *e
		n.X = c.expr(e.X)
		return &n
	case *cc.Binary:
		n := *e
		n.X = c.expr(e.X)
		n.Y = c.expr(e.Y)
		return &n
	case *cc.Assign:
		n := *e
		n.LHS = c.expr(e.LHS)
		n.RHS = c.expr(e.RHS)
		return &n
	case *cc.IncDec:
		n := *e
		n.X = c.expr(e.X)
		return &n
	case *cc.Call:
		n := *e
		n.Fn = c.expr(e.Fn)
		n.Args = c.exprs(e.Args)
		return &n
	case *cc.Index:
		n := *e
		n.Base = c.expr(e.Base)
		n.Idx = c.expr(e.Idx)
		return &n
	case *cc.Cast:
		n := *e
		n.X = c.expr(e.X)
		return &n
	case *cc.Cond:
		n := *e
		n.C = c.expr(e.C)
		n.T = c.expr(e.T)
		n.F = c.expr(e.F)
		return &n
	case *cc.Builtin:
		n := *e
		n.Args = c.exprs(e.Args)
		return &n
	}
	panic(fmt.Sprintf("mvir: clone of unknown expression %T", e))
}

func (c *cloner) exprs(es []cc.Expr) []cc.Expr {
	if es == nil {
		return nil
	}
	out := make([]cc.Expr, len(es))
	for i, e := range es {
		out[i] = c.expr(e)
	}
	return out
}

func (c *cloner) stmt(s cc.Stmt) cc.Stmt {
	switch s := s.(type) {
	case nil:
		return nil
	case *cc.Block:
		n := &cc.Block{}
		n.P = s.P
		for _, st := range s.Stmts {
			n.Stmts = append(n.Stmts, c.stmt(st))
		}
		return n
	case *cc.DeclStmt:
		n := *s
		n.Sym = c.sym(s.Sym)
		n.Init = c.expr(s.Init)
		return &n
	case *cc.ExprStmt:
		n := *s
		n.X = c.expr(s.X)
		return &n
	case *cc.If:
		n := *s
		n.Cond = c.expr(s.Cond)
		n.Then = c.stmt(s.Then)
		n.Else = c.stmt(s.Else)
		return &n
	case *cc.While:
		n := *s
		n.Cond = c.expr(s.Cond)
		n.Body = c.stmt(s.Body)
		return &n
	case *cc.DoWhile:
		n := *s
		n.Body = c.stmt(s.Body)
		n.Cond = c.expr(s.Cond)
		return &n
	case *cc.For:
		n := *s
		n.Init = c.stmt(s.Init)
		n.Cond = c.expr(s.Cond)
		n.Post = c.expr(s.Post)
		n.Body = c.stmt(s.Body)
		return &n
	case *cc.Switch:
		n := &cc.Switch{}
		n.P = s.P
		n.Cond = c.expr(s.Cond)
		for _, cs := range s.Cases {
			nc := &cc.SwitchCase{P: cs.P, IsDefault: cs.IsDefault, Val: cs.Val}
			for _, st := range cs.Stmts {
				nc.Stmts = append(nc.Stmts, c.stmt(st))
			}
			n.Cases = append(n.Cases, nc)
		}
		return n
	case *cc.Return:
		n := *s
		n.X = c.expr(s.X)
		return &n
	case *cc.Break:
		n := *s
		return &n
	case *cc.Continue:
		n := *s
		return &n
	case *cc.Empty:
		n := *s
		return &n
	}
	panic(fmt.Sprintf("mvir: clone of unknown statement %T", s))
}
