package mvir

import (
	"repro/internal/cc"
)

// Optimize runs the specialization-oriented optimization pipeline on f
// until it reaches a fixed point: constant folding, branch pruning,
// local constant propagation, unreachable-code elimination, and
// dead-store elimination. It corresponds to the subset of GCC's
// optimizers the paper identifies as "of special effectiveness":
// constant propagation, constant folding and dead-code elimination.
func Optimize(f *cc.FuncDecl) {
	if f.Body == nil {
		return
	}
	prev := Fingerprint(f)
	for i := 0; i < 16; i++ {
		o := &optimizer{addrTaken: addrTakenLocals(f)}
		body := o.stmt(f.Body, env{})
		if body == nil {
			f.Body = &cc.Block{}
		} else if b, ok := body.(*cc.Block); ok {
			f.Body = b
		} else {
			f.Body = &cc.Block{Stmts: []cc.Stmt{body}}
		}
		removeDeadLocals(f)
		cur := Fingerprint(f)
		if cur == prev {
			return
		}
		prev = cur
	}
}

// env tracks locals currently known to hold a constant.
type env map[*cc.VarSym]int64

func (e env) clone() env {
	n := make(env, len(e))
	for k, v := range e {
		n[k] = v
	}
	return n
}

func (e env) killAssigned(s cc.Stmt) {
	if s == nil || len(e) == 0 {
		return
	}
	dead := make(map[*cc.VarSym]bool)
	assignedLocals(s, dead)
	for sym := range dead {
		delete(e, sym)
	}
}

type optimizer struct {
	addrTaken map[*cc.VarSym]bool
}

// litOf returns the constant value of e if it is an integer literal.
func litOf(e cc.Expr) (int64, bool) {
	lit, ok := e.(*cc.IntLit)
	if !ok {
		return 0, false
	}
	return lit.Value, true
}

func intLit(v int64, t *cc.Type, pos cc.Pos) *cc.IntLit {
	l := &cc.IntLit{Value: v}
	l.P = pos
	l.SetType(t)
	return l
}

// truncate narrows v to the width and signedness of t.
func truncate(v int64, t *cc.Type) int64 {
	size := t.ByteSize()
	if size >= 8 || size == 0 {
		return v
	}
	shift := uint(64 - 8*size)
	if t.IsSigned() {
		return v << shift >> shift
	}
	if t.Kind == cc.KindBool {
		if v != 0 {
			return 1
		}
		return 0
	}
	return int64(uint64(v) << shift >> shift)
}

func (o *optimizer) expr(e cc.Expr, env env) cc.Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *cc.IntLit, *cc.StrLit:
		return e

	case *cc.VarRef:
		if v, ok := env[e.Sym]; ok {
			return intLit(v, e.Type(), e.Pos())
		}
		return e

	case *cc.Unary:
		if e.Op != "&" {
			e.X = o.expr(e.X, env)
		}
		if v, ok := litOf(e.X); ok {
			switch e.Op {
			case "-":
				return intLit(truncate(-v, e.Type()), e.Type(), e.Pos())
			case "~":
				return intLit(truncate(^v, e.Type()), e.Type(), e.Pos())
			case "!":
				r := int64(0)
				if v == 0 {
					r = 1
				}
				return intLit(r, e.Type(), e.Pos())
			}
		}
		return e

	case *cc.Binary:
		return o.binary(e, env)

	case *cc.Assign:
		e.LHS = o.lvalue(e.LHS, env)
		e.RHS = o.expr(e.RHS, env)
		return e

	case *cc.IncDec:
		e.X = o.lvalue(e.X, env)
		return e

	case *cc.Call:
		e.Fn = o.expr(e.Fn, env)
		for i := range e.Args {
			e.Args[i] = o.expr(e.Args[i], env)
		}
		return e

	case *cc.Index:
		e.Base = o.expr(e.Base, env)
		e.Idx = o.expr(e.Idx, env)
		return e

	case *cc.Cast:
		e.X = o.expr(e.X, env)
		if v, ok := litOf(e.X); ok && e.Type().IsInteger() {
			return intLit(truncate(v, e.Type()), e.Type(), e.Pos())
		}
		return e

	case *cc.Cond:
		e.C = o.expr(e.C, env)
		if v, ok := litOf(e.C); ok {
			if v != 0 {
				return o.expr(e.T, env)
			}
			return o.expr(e.F, env)
		}
		e.T = o.expr(e.T, env)
		e.F = o.expr(e.F, env)
		return e

	case *cc.Builtin:
		for i := range e.Args {
			e.Args[i] = o.expr(e.Args[i], env)
		}
		return e
	}
	return e
}

// lvalue folds the computed parts of an lvalue (pointer operands,
// indices) but keeps the location itself a location.
func (o *optimizer) lvalue(e cc.Expr, env env) cc.Expr {
	switch e := e.(type) {
	case *cc.VarRef:
		return e
	case *cc.Unary: // *p
		e.X = o.expr(e.X, env)
		return e
	case *cc.Index:
		e.Base = o.expr(e.Base, env)
		e.Idx = o.expr(e.Idx, env)
		return e
	}
	return e
}

func (o *optimizer) binary(e *cc.Binary, env env) cc.Expr {
	e.X = o.expr(e.X, env)

	// Short-circuit operators: the left side decides whether the right
	// side runs at all.
	if e.Op == "&&" || e.Op == "||" {
		if v, ok := litOf(e.X); ok {
			taken := (e.Op == "&&" && v != 0) || (e.Op == "||" && v == 0)
			if !taken {
				// Result is fully decided: 0 for a false &&, 1 for a
				// true ||; the right side never runs.
				r := int64(0)
				if e.Op == "||" {
					r = 1
				}
				return intLit(r, e.Type(), e.Pos())
			}
			// Result is !!Y.
			y := o.expr(e.Y, env)
			if vy, ok := litOf(y); ok {
				r := int64(0)
				if vy != 0 {
					r = 1
				}
				return intLit(r, e.Type(), e.Pos())
			}
			ne := &cc.Binary{Op: "!=", X: y, Y: intLit(0, cc.TypeInt, e.Pos())}
			ne.P = e.Pos()
			ne.SetType(cc.TypeInt)
			return ne
		}
		e.Y = o.expr(e.Y, env)
		if v, ok := litOf(e.Y); ok && !HasSideEffects(e.X) {
			// X && 0 -> 0, X || 1 -> 1 when X is pure.
			if e.Op == "&&" && v == 0 {
				return intLit(0, e.Type(), e.Pos())
			}
			if e.Op == "||" && v != 0 {
				return intLit(1, e.Type(), e.Pos())
			}
		}
		return e
	}

	e.Y = o.expr(e.Y, env)
	xv, xok := litOf(e.X)
	yv, yok := litOf(e.Y)
	if !xok || !yok {
		return e
	}
	// Only pure integer arithmetic folds; pointer arithmetic keeps its
	// relocations.
	xt, yt := e.X.Type(), e.Y.Type()
	if !xt.IsInteger() || !yt.IsInteger() {
		return e
	}
	common := cc.Common(xt, yt)
	unsigned := !common.IsSigned()
	var r int64
	switch e.Op {
	case "+":
		r = xv + yv
	case "-":
		r = xv - yv
	case "*":
		r = xv * yv
	case "/":
		if yv == 0 {
			return e // leave the runtime fault in place
		}
		if unsigned {
			r = int64(uint64(xv) / uint64(yv))
		} else {
			r = xv / yv
		}
	case "%":
		if yv == 0 {
			return e
		}
		if unsigned {
			r = int64(uint64(xv) % uint64(yv))
		} else {
			r = xv % yv
		}
	case "&":
		r = xv & yv
	case "|":
		r = xv | yv
	case "^":
		r = xv ^ yv
	case "<<":
		r = xv << (uint64(yv) & 63)
	case ">>":
		if unsigned {
			r = int64(uint64(xv) >> (uint64(yv) & 63))
		} else {
			r = xv >> (uint64(yv) & 63)
		}
	case "==", "!=", "<", "<=", ">", ">=":
		var b bool
		if unsigned {
			ux, uy := uint64(xv), uint64(yv)
			switch e.Op {
			case "==":
				b = ux == uy
			case "!=":
				b = ux != uy
			case "<":
				b = ux < uy
			case "<=":
				b = ux <= uy
			case ">":
				b = ux > uy
			case ">=":
				b = ux >= uy
			}
		} else {
			switch e.Op {
			case "==":
				b = xv == yv
			case "!=":
				b = xv != yv
			case "<":
				b = xv < yv
			case "<=":
				b = xv <= yv
			case ">":
				b = xv > yv
			case ">=":
				b = xv >= yv
			}
		}
		if b {
			r = 1
		}
		return intLit(r, e.Type(), e.Pos())
	default:
		return e
	}
	return intLit(truncate(r, e.Type()), e.Type(), e.Pos())
}

// terminates reports whether the statement never falls through.
func terminates(s cc.Stmt) bool {
	switch s := s.(type) {
	case *cc.Return, *cc.Break, *cc.Continue:
		return true
	case *cc.Block:
		n := len(s.Stmts)
		return n > 0 && terminates(s.Stmts[n-1])
	case *cc.If:
		return s.Else != nil && terminates(s.Then) && terminates(s.Else)
	}
	return false
}

// stmt optimizes one statement under the incoming constant environment
// and returns the replacement (nil when the statement disappears).
// The environment is updated in place to reflect the statement's
// effects.
func (o *optimizer) stmt(s cc.Stmt, env env) cc.Stmt {
	switch s := s.(type) {
	case nil:
		return nil

	case *cc.Block:
		var out []cc.Stmt
		for _, st := range s.Stmts {
			n := o.stmt(st, env)
			if n == nil {
				continue
			}
			if blk, ok := n.(*cc.Block); ok && len(blk.Stmts) == 0 {
				continue
			}
			out = append(out, n)
			if terminates(n) {
				break // everything after is unreachable
			}
		}
		s.Stmts = out
		if len(out) == 0 {
			return nil
		}
		return s

	case *cc.DeclStmt:
		s.Init = o.expr(s.Init, env)
		if v, ok := litOf(s.Init); ok && !o.addrTaken[s.Sym] {
			env[s.Sym] = truncate(v, s.Sym.Type)
		} else {
			delete(env, s.Sym)
		}
		return s

	case *cc.ExprStmt:
		s.X = o.expr(s.X, env)
		env.killAssigned(s)
		// Track simple constant stores to locals.
		if a, ok := s.X.(*cc.Assign); ok && a.Op == "=" {
			if vr, ok := a.LHS.(*cc.VarRef); ok && vr.Sym != nil &&
				(vr.Sym.Storage == cc.StorageLocal || vr.Sym.Storage == cc.StorageParam) &&
				!o.addrTaken[vr.Sym] {
				if v, ok := litOf(a.RHS); ok {
					env[vr.Sym] = truncate(v, vr.Sym.Type)
				}
			}
		}
		if !HasSideEffects(s.X) {
			return nil
		}
		return s

	case *cc.If:
		s.Cond = o.expr(s.Cond, env)
		if v, ok := litOf(s.Cond); ok {
			if v != 0 {
				return o.stmt(s.Then, env)
			}
			if s.Else != nil {
				return o.stmt(s.Else, env)
			}
			return nil
		}
		thenEnv, elseEnv := env.clone(), env.clone()
		s.Then = o.stmt(s.Then, thenEnv)
		if s.Else != nil {
			s.Else = o.stmt(s.Else, elseEnv)
		}
		env.killAssigned(s)
		if s.Then == nil && s.Else == nil {
			if HasSideEffects(s.Cond) {
				es := &cc.ExprStmt{X: s.Cond}
				return es
			}
			return nil
		}
		if s.Then == nil {
			// if (c) {} else B  ->  if (!c) B
			not := &cc.Unary{Op: "!", X: s.Cond}
			not.SetType(cc.TypeInt)
			s.Cond = not
			s.Then = s.Else
			s.Else = nil
		}
		return s

	case *cc.While:
		env.killAssigned(s)
		s.Cond = o.expr(s.Cond, env)
		if v, ok := litOf(s.Cond); ok && v == 0 {
			return nil
		}
		s.Body = o.stmt(s.Body, env.clone())
		if s.Body == nil {
			s.Body = &cc.Block{}
		}
		return s

	case *cc.DoWhile:
		env.killAssigned(s)
		s.Body = o.stmt(s.Body, env.clone())
		s.Cond = o.expr(s.Cond, env.clone())
		if s.Body == nil {
			s.Body = &cc.Block{}
		}
		if v, ok := litOf(s.Cond); ok && v == 0 && !containsLoopCtl(s.Body) {
			// do B while(0) runs B exactly once.
			return s.Body
		}
		return s

	case *cc.For:
		s.Init = o.stmt(s.Init, env)
		env.killAssigned(s.Body)
		if s.Post != nil {
			post := &cc.ExprStmt{X: s.Post}
			env.killAssigned(post)
		}
		s.Cond = o.expr(s.Cond, env.clone())
		if v, ok := litOf(s.Cond); ok && v == 0 {
			return s.Init
		}
		bodyEnv := env.clone()
		s.Body = o.stmt(s.Body, bodyEnv)
		if s.Body == nil {
			s.Body = &cc.Block{}
		}
		s.Post = o.expr(s.Post, env.clone())
		env.killAssigned(s)
		return s

	case *cc.Switch:
		return o.switchStmt(s, env)

	case *cc.Return:
		s.X = o.expr(s.X, env)
		return s

	case *cc.Empty:
		return nil

	case *cc.Break, *cc.Continue:
		return s
	}
	return s
}

// switchStmt optimizes a switch; a constant scrutinee selects the
// matching case chain statically (the fallthrough suffix wrapped in a
// do-while(0) so break still exits), mirroring how GCC folds constant
// switches during specialization.
func (o *optimizer) switchStmt(s *cc.Switch, env env) cc.Stmt {
	s.Cond = o.expr(s.Cond, env)
	env.killAssigned(s)
	if v, ok := litOf(s.Cond); ok {
		idx := -1
		for i, cs := range s.Cases {
			if !cs.IsDefault && cs.Val == v {
				idx = i
				break
			}
		}
		if idx < 0 {
			for i, cs := range s.Cases {
				if cs.IsDefault {
					idx = i
					break
				}
			}
		}
		if idx < 0 {
			return nil // no case matches, no default: the switch vanishes
		}
		// Collect the fallthrough suffix starting at the match.
		body := &cc.Block{}
		for _, cs := range s.Cases[idx:] {
			body.Stmts = append(body.Stmts, cs.Stmts...)
		}
		if containsContinue(body) {
			// A continue would be captured by the do-while wrapper;
			// keep the switch intact (codegen handles it correctly).
			for _, cs := range s.Cases {
				o.optimizeCaseStmts(cs, env)
			}
			return s
		}
		wrapped := &cc.DoWhile{Body: body, Cond: intLit(0, cc.TypeInt, s.Pos())}
		return o.stmt(wrapped, env)
	}
	for _, cs := range s.Cases {
		o.optimizeCaseStmts(cs, env)
	}
	return s
}

func (o *optimizer) optimizeCaseStmts(cs *cc.SwitchCase, env env) {
	var out []cc.Stmt
	for _, st := range cs.Stmts {
		if n := o.stmt(st, env.clone()); n != nil {
			out = append(out, n)
		}
	}
	cs.Stmts = out
}

// containsLoopCtl reports whether s contains a break/continue that
// binds to the enclosing loop (not to a nested one).
func containsLoopCtl(s cc.Stmt) bool {
	switch s := s.(type) {
	case *cc.Break, *cc.Continue:
		return true
	case *cc.Block:
		for _, st := range s.Stmts {
			if containsLoopCtl(st) {
				return true
			}
		}
	case *cc.If:
		return containsLoopCtl(s.Then) || containsLoopCtl(s.Else)
	case *cc.Switch:
		// break inside binds to the switch; only continue escapes.
		return containsContinue(s)
	case nil:
	}
	// While/DoWhile/For rebind break/continue.
	return false
}

// containsContinue reports whether s contains a continue that binds to
// the enclosing loop (nested loops rebind it; switches do not).
func containsContinue(s cc.Stmt) bool {
	switch s := s.(type) {
	case *cc.Continue:
		return true
	case *cc.Block:
		for _, st := range s.Stmts {
			if containsContinue(st) {
				return true
			}
		}
	case *cc.If:
		return containsContinue(s.Then) || containsContinue(s.Else)
	case *cc.Switch:
		for _, cs := range s.Cases {
			for _, st := range cs.Stmts {
				if containsContinue(st) {
					return true
				}
			}
		}
	case nil:
	}
	return false
}

// removeDeadLocals drops locals that are never read and whose address
// is never taken, turning their initializers and assignments into bare
// side-effect evaluation.
func removeDeadLocals(f *cc.FuncDecl) {
	reads := localReads(f)
	addr := addrTakenLocals(f)
	dead := func(sym *cc.VarSym) bool {
		return sym != nil && sym.Storage == cc.StorageLocal &&
			reads[sym] == 0 && !addr[sym]
	}
	var fix func(s cc.Stmt) cc.Stmt
	fixBlock := func(b *cc.Block) {
		var out []cc.Stmt
		for _, st := range b.Stmts {
			if n := fix(st); n != nil {
				out = append(out, n)
			}
		}
		b.Stmts = out
	}
	fix = func(s cc.Stmt) cc.Stmt {
		switch s := s.(type) {
		case nil:
			return nil
		case *cc.Block:
			fixBlock(s)
			if len(s.Stmts) == 0 {
				return nil
			}
			return s
		case *cc.DeclStmt:
			if dead(s.Sym) {
				if s.Init != nil && HasSideEffects(s.Init) {
					return &cc.ExprStmt{X: s.Init}
				}
				return nil
			}
			return s
		case *cc.ExprStmt:
			if a, ok := s.X.(*cc.Assign); ok && a.Op == "=" {
				if vr, ok := a.LHS.(*cc.VarRef); ok && dead(vr.Sym) {
					if HasSideEffects(a.RHS) {
						return &cc.ExprStmt{X: a.RHS}
					}
					return nil
				}
			}
			if id, ok := s.X.(*cc.IncDec); ok {
				if vr, ok := id.X.(*cc.VarRef); ok && dead(vr.Sym) {
					return nil
				}
			}
			return s
		case *cc.If:
			s.Then = fix(s.Then)
			s.Else = fix(s.Else)
			if s.Then == nil && s.Else == nil {
				if HasSideEffects(s.Cond) {
					return &cc.ExprStmt{X: s.Cond}
				}
				return nil
			}
			if s.Then == nil {
				not := &cc.Unary{Op: "!", X: s.Cond}
				not.SetType(cc.TypeInt)
				s.Cond = not
				s.Then = s.Else
				s.Else = nil
			}
			return s
		case *cc.While:
			s.Body = ensureStmt(fix(s.Body))
			return s
		case *cc.DoWhile:
			s.Body = ensureStmt(fix(s.Body))
			return s
		case *cc.For:
			s.Init = fix(s.Init)
			s.Body = ensureStmt(fix(s.Body))
			return s
		case *cc.Switch:
			for _, cs := range s.Cases {
				var out []cc.Stmt
				for _, st := range cs.Stmts {
					if n := fix(st); n != nil {
						out = append(out, n)
					}
				}
				cs.Stmts = out
			}
			return s
		}
		return s
	}
	if f.Body != nil {
		fixBlock(f.Body)
	}
}

func ensureStmt(s cc.Stmt) cc.Stmt {
	if s == nil {
		return &cc.Block{}
	}
	return s
}
