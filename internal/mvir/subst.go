package mvir

import (
	"fmt"

	"repro/internal/cc"
)

// Substitute replaces every *read* of the given configuration switches
// in f's body with the constant from the assignment, exactly as the
// compiler plugin does before the optimization passes (paper §3).
// Writes to a substituted switch are kept and reported as warnings.
func Substitute(f *cc.FuncDecl, assignment map[*cc.VarSym]int64) []string {
	s := &substituter{assignment: assignment}
	if f.Body != nil {
		s.stmt(f.Body)
	}
	return s.warnings
}

type substituter struct {
	assignment map[*cc.VarSym]int64
	warnings   []string
}

// value returns the constant replacement for a read of e, if any.
func (s *substituter) value(e cc.Expr) (cc.Expr, bool) {
	vr, ok := e.(*cc.VarRef)
	if !ok || vr.Sym == nil {
		return nil, false
	}
	v, ok := s.assignment[vr.Sym]
	if !ok {
		return nil, false
	}
	lit := &cc.IntLit{Value: v}
	lit.P = vr.P
	lit.SetType(vr.Type())
	return lit, true
}

// expr rewrites reads inside e and returns the replacement.
func (s *substituter) expr(e cc.Expr) cc.Expr {
	if e == nil {
		return nil
	}
	if lit, ok := s.value(e); ok {
		return lit
	}
	switch e := e.(type) {
	case *cc.IntLit, *cc.StrLit, *cc.VarRef:
		return e
	case *cc.Unary:
		if e.Op == "&" {
			// Taking the address of a switch is not a read; the
			// variable keeps existing in memory.
			return e
		}
		e.X = s.expr(e.X)
		return e
	case *cc.Binary:
		e.X = s.expr(e.X)
		e.Y = s.expr(e.Y)
		return e
	case *cc.Assign:
		if vr, ok := e.LHS.(*cc.VarRef); ok && vr.Sym != nil {
			if _, isSwitch := s.assignment[vr.Sym]; isSwitch {
				s.warnings = append(s.warnings, fmt.Sprintf(
					"%s: write to bound configuration switch %q in specialized variant",
					e.Pos(), vr.Sym.Name))
				// The LHS stays a variable reference; only the RHS
				// (and, for compound assignment, the implicit read)
				// is substituted. The store still happens.
				e.RHS = s.expr(e.RHS)
				return e
			}
		}
		e.LHS = s.lvalue(e.LHS)
		e.RHS = s.expr(e.RHS)
		return e
	case *cc.IncDec:
		if vr, ok := e.X.(*cc.VarRef); ok && vr.Sym != nil {
			if _, isSwitch := s.assignment[vr.Sym]; isSwitch {
				s.warnings = append(s.warnings, fmt.Sprintf(
					"%s: write to bound configuration switch %q in specialized variant",
					e.Pos(), vr.Sym.Name))
				return e
			}
		}
		e.X = s.lvalue(e.X)
		return e
	case *cc.Call:
		e.Fn = s.expr(e.Fn)
		for i := range e.Args {
			e.Args[i] = s.expr(e.Args[i])
		}
		return e
	case *cc.Index:
		e.Base = s.expr(e.Base)
		e.Idx = s.expr(e.Idx)
		return e
	case *cc.Cast:
		e.X = s.expr(e.X)
		return e
	case *cc.Cond:
		e.C = s.expr(e.C)
		e.T = s.expr(e.T)
		e.F = s.expr(e.F)
		return e
	case *cc.Builtin:
		for i := range e.Args {
			e.Args[i] = s.expr(e.Args[i])
		}
		return e
	}
	panic(fmt.Sprintf("mvir: substitute in unknown expression %T", e))
}

// lvalue rewrites the non-store parts of an lvalue expression
// (indices, pointer operands) but never the stored-to location itself.
func (s *substituter) lvalue(e cc.Expr) cc.Expr {
	switch e := e.(type) {
	case *cc.VarRef:
		return e
	case *cc.Unary: // *p
		e.X = s.expr(e.X)
		return e
	case *cc.Index:
		e.Base = s.expr(e.Base)
		e.Idx = s.expr(e.Idx)
		return e
	}
	return s.expr(e)
}

func (s *substituter) stmt(st cc.Stmt) {
	switch st := st.(type) {
	case nil:
	case *cc.Block:
		for i := range st.Stmts {
			s.stmt(st.Stmts[i])
		}
	case *cc.DeclStmt:
		st.Init = s.expr(st.Init)
	case *cc.ExprStmt:
		st.X = s.expr(st.X)
	case *cc.If:
		st.Cond = s.expr(st.Cond)
		s.stmt(st.Then)
		s.stmt(st.Else)
	case *cc.While:
		st.Cond = s.expr(st.Cond)
		s.stmt(st.Body)
	case *cc.DoWhile:
		s.stmt(st.Body)
		st.Cond = s.expr(st.Cond)
	case *cc.For:
		s.stmt(st.Init)
		st.Cond = s.expr(st.Cond)
		st.Post = s.expr(st.Post)
		s.stmt(st.Body)
	case *cc.Switch:
		st.Cond = s.expr(st.Cond)
		for _, cs := range st.Cases {
			for i := range cs.Stmts {
				s.stmt(cs.Stmts[i])
			}
		}
	case *cc.Return:
		st.X = s.expr(st.X)
	case *cc.Break, *cc.Continue, *cc.Empty:
	default:
		panic(fmt.Sprintf("mvir: substitute in unknown statement %T", st))
	}
}

// ReferencedSwitches returns the multiverse configuration switches read
// or written anywhere in f's body, in first-appearance order. This is
// the set the variant generator builds its cross product over.
func ReferencedSwitches(f *cc.FuncDecl) []*cc.VarSym {
	var order []*cc.VarSym
	seen := make(map[*cc.VarSym]bool)
	WalkExprs(f, func(e cc.Expr) {
		vr, ok := e.(*cc.VarRef)
		if !ok || vr.Sym == nil || !vr.Sym.Multiverse {
			return
		}
		if !seen[vr.Sym] {
			seen[vr.Sym] = true
			order = append(order, vr.Sym)
		}
	})
	return order
}
