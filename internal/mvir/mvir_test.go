package mvir

import (
	"strings"
	"testing"

	"repro/internal/cc"
)

func parse(t *testing.T, src string) *cc.Unit {
	t.Helper()
	u, err := cc.Parse("test.mvc", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.Check(u); err != nil {
		t.Fatal(err)
	}
	return u
}

func fn(t *testing.T, u *cc.Unit, name string) *cc.FuncDecl {
	t.Helper()
	s := u.Globals[name]
	if s == nil || s.Func == nil {
		t.Fatalf("no function %q", name)
	}
	return s.Func
}

func TestCloneIsIndependent(t *testing.T) {
	u := parse(t, `
		int g;
		int f(int a) { int x = a + g; return x; }
	`)
	orig := fn(t, u, "f")
	clone := CloneFunc(orig)
	if Fingerprint(orig) != Fingerprint(clone) {
		t.Fatal("clone fingerprint differs")
	}
	// Mutating the clone must not affect the original.
	Substitute(clone, map[*cc.VarSym]int64{u.Globals["g"]: 7})
	Optimize(clone)
	if Fingerprint(orig) == Fingerprint(clone) {
		t.Fatal("substitution leaked into the original")
	}
	// Param symbols must be fresh objects.
	if orig.Params[0] == clone.Params[0] {
		t.Error("clone shares parameter symbols")
	}
}

func TestSubstituteReplacesReads(t *testing.T) {
	u := parse(t, `
		multiverse int A;
		int f(void) { return A + A; }
	`)
	f := CloneFunc(fn(t, u, "f"))
	warns := Substitute(f, map[*cc.VarSym]int64{u.Globals["A"]: 3})
	if len(warns) != 0 {
		t.Errorf("warnings: %v", warns)
	}
	Optimize(f)
	fp := Fingerprint(f)
	if !strings.Contains(fp, "#6") {
		t.Errorf("A+A with A=3 did not fold to 6: %s", fp)
	}
}

func TestSubstituteWarnsOnWrite(t *testing.T) {
	u := parse(t, `
		multiverse int A;
		void f(void) { A = 1; A++; }
	`)
	f := CloneFunc(fn(t, u, "f"))
	warns := Substitute(f, map[*cc.VarSym]int64{u.Globals["A"]: 0})
	if len(warns) != 2 {
		t.Fatalf("warnings = %v, want 2", warns)
	}
	for _, w := range warns {
		if !strings.Contains(w, "write to bound configuration switch") {
			t.Errorf("warning %q", w)
		}
	}
	// The writes must survive (the paper keeps behaviour, only warns).
	fp := Fingerprint(f)
	if !strings.Contains(fp, "g:A") {
		t.Errorf("write to A eliminated: %s", fp)
	}
}

func TestSubstituteDoesNotTouchAddressOf(t *testing.T) {
	u := parse(t, `
		multiverse long A;
		long* f(void) { return &A; }
	`)
	f := CloneFunc(fn(t, u, "f"))
	Substitute(f, map[*cc.VarSym]int64{u.Globals["A"]: 1})
	if !strings.Contains(Fingerprint(f), "g:A") {
		t.Error("&A was substituted away")
	}
}

func TestBranchPruning(t *testing.T) {
	u := parse(t, `
		multiverse int smp;
		void irq_disable(void);
		void acquire(void);
		void lock(void) {
			if (smp) {
				irq_disable();
				acquire();
			} else {
				irq_disable();
			}
		}
	`)
	// smp = 0: only irq_disable survives.
	f0 := CloneFunc(fn(t, u, "lock"))
	Substitute(f0, map[*cc.VarSym]int64{u.Globals["smp"]: 0})
	Optimize(f0)
	fp0 := Fingerprint(f0)
	if strings.Contains(fp0, "acquire") {
		t.Errorf("smp=0 variant still acquires: %s", fp0)
	}
	if !strings.Contains(fp0, "irq_disable") {
		t.Errorf("smp=0 variant lost irq_disable: %s", fp0)
	}
	// smp = 1: both calls survive.
	f1 := CloneFunc(fn(t, u, "lock"))
	Substitute(f1, map[*cc.VarSym]int64{u.Globals["smp"]: 1})
	Optimize(f1)
	if !strings.Contains(Fingerprint(f1), "acquire") {
		t.Error("smp=1 variant lost the acquire call")
	}
}

func TestMergeCandidatesHaveEqualFingerprints(t *testing.T) {
	// Figure 2 of the paper: A=0,B=0 and A=0,B=1 yield the same
	// (empty) body and must merge.
	u := parse(t, `
		multiverse int A;
		multiverse int B;
		void calc(void);
		void logmsg(void);
		void multi(void) {
			if (A) {
				calc();
				if (B) { logmsg(); }
			}
		}
	`)
	variant := func(a, b int64) string {
		f := CloneFunc(fn(t, u, "multi"))
		Substitute(f, map[*cc.VarSym]int64{u.Globals["A"]: a, u.Globals["B"]: b})
		Optimize(f)
		return Fingerprint(f)
	}
	if variant(0, 0) != variant(0, 1) {
		t.Errorf("A=0 variants differ:\n%s\n%s", variant(0, 0), variant(0, 1))
	}
	if variant(1, 0) == variant(1, 1) {
		t.Error("A=1 variants should differ")
	}
	if variant(0, 0) == variant(1, 0) {
		t.Error("A=0 and A=1 variants should differ")
	}
	// The A=0 variant must be empty.
	f := CloneFunc(fn(t, u, "multi"))
	Substitute(f, map[*cc.VarSym]int64{u.Globals["A"]: 0, u.Globals["B"]: 0})
	Optimize(f)
	if len(f.Body.Stmts) != 0 {
		t.Errorf("A=0 body not empty: %s", Fingerprint(f))
	}
}

func TestLocalConstantPropagation(t *testing.T) {
	u := parse(t, `
		multiverse int A;
		int f(void) {
			int x = A * 2;
			if (x > 1) { return 100; }
			return 200;
		}
	`)
	f := CloneFunc(fn(t, u, "f"))
	Substitute(f, map[*cc.VarSym]int64{u.Globals["A"]: 3})
	Optimize(f)
	fp := Fingerprint(f)
	if !strings.Contains(fp, "#100") || strings.Contains(fp, "#200") {
		t.Errorf("constant propagation through local failed: %s", fp)
	}
	if strings.Contains(fp, "if") {
		t.Errorf("branch not pruned: %s", fp)
	}
}

func TestWhileFalseRemoved(t *testing.T) {
	u := parse(t, `
		multiverse int on;
		void work(void);
		void f(void) { while (on) { work(); } }
	`)
	f := CloneFunc(fn(t, u, "f"))
	Substitute(f, map[*cc.VarSym]int64{u.Globals["on"]: 0})
	Optimize(f)
	if len(f.Body.Stmts) != 0 {
		t.Errorf("while(0) not removed: %s", Fingerprint(f))
	}
}

func TestForFalseKeepsInit(t *testing.T) {
	u := parse(t, `
		multiverse int n;
		int g;
		void f(void) { for (g = 5; n; g++) { } }
	`)
	f := CloneFunc(fn(t, u, "f"))
	Substitute(f, map[*cc.VarSym]int64{u.Globals["n"]: 0})
	Optimize(f)
	fp := Fingerprint(f)
	if !strings.Contains(fp, "g:g") || strings.Contains(fp, "for") {
		t.Errorf("for(0) should keep only the init: %s", fp)
	}
}

func TestDoWhileFalseRunsOnce(t *testing.T) {
	u := parse(t, `
		multiverse int again;
		void work(void);
		void f(void) { do { work(); } while (again); }
	`)
	f := CloneFunc(fn(t, u, "f"))
	Substitute(f, map[*cc.VarSym]int64{u.Globals["again"]: 0})
	Optimize(f)
	fp := Fingerprint(f)
	if strings.Contains(fp, "do") || !strings.Contains(fp, "work") {
		t.Errorf("do-while(0): %s", fp)
	}
}

func TestShortCircuitFolding(t *testing.T) {
	u := parse(t, `
		multiverse int A;
		int side(void);
		int f(void) { return A && side(); }
		int g(void) { return A || 1; }
	`)
	f := CloneFunc(fn(t, u, "f"))
	Substitute(f, map[*cc.VarSym]int64{u.Globals["A"]: 0})
	Optimize(f)
	fp := Fingerprint(f)
	if strings.Contains(fp, "side") {
		t.Errorf("0 && side() kept the call: %s", fp)
	}
	g := CloneFunc(fn(t, u, "g"))
	Substitute(g, map[*cc.VarSym]int64{u.Globals["A"]: 1})
	Optimize(g)
	if !strings.Contains(Fingerprint(g), "#1") {
		t.Errorf("1 || 1 not folded: %s", Fingerprint(g))
	}
}

func TestUnreachableAfterReturn(t *testing.T) {
	u := parse(t, `
		multiverse int early;
		void work(void);
		void f(void) {
			if (early) { return; }
			work();
		}
	`)
	f := CloneFunc(fn(t, u, "f"))
	Substitute(f, map[*cc.VarSym]int64{u.Globals["early"]: 1})
	Optimize(f)
	fp := Fingerprint(f)
	if strings.Contains(fp, "work") {
		t.Errorf("unreachable call survived: %s", fp)
	}
}

func TestDeadStoreElimination(t *testing.T) {
	u := parse(t, `
		multiverse int on;
		int pure(int a, int b) { return a + b; }
		void f(void) {
			int unused = 1 + 2;
			if (on) { unused = 7; }
		}
	`)
	f := CloneFunc(fn(t, u, "f"))
	Substitute(f, map[*cc.VarSym]int64{u.Globals["on"]: 0})
	Optimize(f)
	if len(f.Body.Stmts) != 0 {
		t.Errorf("dead local not removed: %s", Fingerprint(f))
	}
}

func TestDeadStoreKeepsSideEffects(t *testing.T) {
	u := parse(t, `
		int effect(void);
		void f(void) { int unused = effect(); }
	`)
	f := CloneFunc(fn(t, u, "f"))
	Optimize(f)
	if !strings.Contains(Fingerprint(f), "effect") {
		t.Error("side-effecting initializer dropped")
	}
}

func TestAddressTakenLocalNotPropagated(t *testing.T) {
	u := parse(t, `
		void update(long* p);
		long f(void) {
			long x = 1;
			update(&x);
			return x;
		}
	`)
	f := CloneFunc(fn(t, u, "f"))
	Optimize(f)
	fp := Fingerprint(f)
	if !strings.Contains(fp, "return l") {
		t.Errorf("address-taken local folded to a constant: %s", fp)
	}
}

func TestReferencedSwitches(t *testing.T) {
	u := parse(t, `
		multiverse int A;
		multiverse int B;
		int other;
		int f(void) { return A + other; }
		int g(void) { return B + A; }
		int h(void) { return other; }
	`)
	a, b := u.Globals["A"], u.Globals["B"]
	if got := ReferencedSwitches(fn(t, u, "f")); len(got) != 1 || got[0] != a {
		t.Errorf("f switches = %v", got)
	}
	if got := ReferencedSwitches(fn(t, u, "g")); len(got) != 2 || got[0] != b || got[1] != a {
		t.Errorf("g switches = %v", got)
	}
	if got := ReferencedSwitches(fn(t, u, "h")); len(got) != 0 {
		t.Errorf("h switches = %v", got)
	}
}

func TestUnsignedFolding(t *testing.T) {
	u := parse(t, `
		multiverse int A;
		uint f(void) { return (uint)A / 2; }
		int g(void) { uint x = (uint)0 - 1; return x > 0; }
	`)
	f := CloneFunc(fn(t, u, "f"))
	Substitute(f, map[*cc.VarSym]int64{u.Globals["A"]: 7})
	Optimize(f)
	if !strings.Contains(Fingerprint(f), "#3") {
		t.Errorf("7u/2 != 3: %s", Fingerprint(f))
	}
	g := CloneFunc(fn(t, u, "g"))
	Optimize(g)
	if !strings.Contains(Fingerprint(g), "#1") {
		t.Errorf("(0u-1) > 0 should fold to 1 (unsigned): %s", Fingerprint(g))
	}
}

func TestTruncationOnNarrowTypes(t *testing.T) {
	u := parse(t, `
		int f(void) { char c = (char)300; return c; }
	`)
	f := CloneFunc(fn(t, u, "f"))
	Optimize(f)
	if !strings.Contains(Fingerprint(f), "#44") { // 300 mod 256 = 44
		t.Errorf("char truncation: %s", Fingerprint(f))
	}
}

func TestTernaryFolding(t *testing.T) {
	u := parse(t, `
		multiverse int A;
		int f(void) { return A ? 10 : 20; }
	`)
	f := CloneFunc(fn(t, u, "f"))
	Substitute(f, map[*cc.VarSym]int64{u.Globals["A"]: 1})
	Optimize(f)
	fp := Fingerprint(f)
	if !strings.Contains(fp, "#10") || strings.Contains(fp, "#20") {
		t.Errorf("ternary not folded: %s", fp)
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	u := parse(t, `
		multiverse int A;
		void w(void);
		int f(int n) {
			int acc = 0;
			for (int i = 0; i < n; i++) {
				if (A) { w(); }
				acc += i;
			}
			return acc;
		}
	`)
	f := CloneFunc(fn(t, u, "f"))
	Substitute(f, map[*cc.VarSym]int64{u.Globals["A"]: 0})
	Optimize(f)
	fp1 := Fingerprint(f)
	Optimize(f)
	if Fingerprint(f) != fp1 {
		t.Error("Optimize is not idempotent")
	}
	if strings.Contains(fp1, "g:w") {
		t.Errorf("A=0 kept the call: %s", fp1)
	}
}

func TestDivisionByZeroNotFolded(t *testing.T) {
	u := parse(t, `int f(void) { return 1 / 0; }`)
	f := CloneFunc(fn(t, u, "f"))
	Optimize(f)
	if !strings.Contains(Fingerprint(f), "/") {
		t.Error("1/0 was folded away")
	}
}

func TestFingerprintNormalizesLocalNames(t *testing.T) {
	u := parse(t, `
		int f(void) { int alpha = 1; return alpha; }
		int g(void) { int beta = 1; return beta; }
	`)
	if Fingerprint(fn(t, u, "f")) != Fingerprint(fn(t, u, "g")) {
		t.Error("fingerprints should ignore local names")
	}
	if FingerprintHash(fn(t, u, "f")) != FingerprintHash(fn(t, u, "g")) {
		t.Error("hashes should match too")
	}
}

func TestNestedLoopBreakPreserved(t *testing.T) {
	u := parse(t, `
		multiverse int stop;
		int f(void) {
			int n = 0;
			do {
				while (1) { n++; break; }
			} while (stop);
			return n;
		}
	`)
	f := CloneFunc(fn(t, u, "f"))
	Substitute(f, map[*cc.VarSym]int64{u.Globals["stop"]: 0})
	Optimize(f)
	fp := Fingerprint(f)
	// The inner while(1){...break;} must survive even though the outer
	// do-while(0) unwraps — the break binds to the inner loop.
	if !strings.Contains(fp, "while") || !strings.Contains(fp, "break") {
		t.Errorf("inner loop mangled: %s", fp)
	}
}

func TestConstantSwitchFolds(t *testing.T) {
	u := parse(t, `
		multiverse(0, 1, 2) int mode;
		void a(void);
		void b(void);
		void c(void);
		multiverse void dispatch(void) {
			switch (mode) {
			case 0:
				a();
				break;
			case 1:
				b();
				break;
			default:
				c();
			}
		}
	`)
	variant := func(v int64) string {
		f := CloneFunc(fn(t, u, "dispatch"))
		Substitute(f, map[*cc.VarSym]int64{u.Globals["mode"]: v})
		Optimize(f)
		return Fingerprint(f)
	}
	if fp := variant(0); !strings.Contains(fp, "g:a") || strings.Contains(fp, "g:b") || strings.Contains(fp, "g:c") {
		t.Errorf("mode=0: %s", fp)
	}
	if fp := variant(1); !strings.Contains(fp, "g:b") || strings.Contains(fp, "g:a") {
		t.Errorf("mode=1: %s", fp)
	}
	if fp := variant(2); !strings.Contains(fp, "g:c") || strings.Contains(fp, "g:a") {
		t.Errorf("mode=2 (default): %s", fp)
	}
	if fp := variant(0); strings.Contains(fp, "switch") {
		t.Errorf("constant switch not folded away: %s", fp)
	}
}

func TestConstantSwitchFallthroughFolds(t *testing.T) {
	u := parse(t, `
		multiverse(1, 3) int mode;
		void x(void);
		void y(void);
		multiverse void f(void) {
			switch (mode) {
			case 1:
				x();
			case 2:
				y();
				break;
			case 3:
				y();
			}
		}
	`)
	f := CloneFunc(fn(t, u, "f"))
	Substitute(f, map[*cc.VarSym]int64{u.Globals["mode"]: 1})
	Optimize(f)
	fp := Fingerprint(f)
	// mode=1 falls through into case 2: both x and y run.
	if !strings.Contains(fp, "g:x") || !strings.Contains(fp, "g:y") {
		t.Errorf("fallthrough lost: %s", fp)
	}
}

func TestConstantSwitchNoMatchNoDefaultVanishes(t *testing.T) {
	u := parse(t, `
		multiverse(0, 5) int mode;
		void w(void);
		multiverse void f(void) {
			switch (mode) {
			case 0:
				w();
				break;
			}
		}
	`)
	f := CloneFunc(fn(t, u, "f"))
	Substitute(f, map[*cc.VarSym]int64{u.Globals["mode"]: 5})
	Optimize(f)
	if len(f.Body.Stmts) != 0 {
		t.Errorf("unmatched switch not removed: %s", Fingerprint(f))
	}
}

func TestConstantSwitchWithContinueKept(t *testing.T) {
	// A continue inside the selected case binds to the surrounding
	// loop; the optimizer must NOT wrap it in a do-while(0).
	u := parse(t, `
		multiverse int mode;
		long g;
		multiverse void f(long n) {
			for (long i = 0; i < n; i++) {
				switch (mode) {
				case 0:
					continue;
				default:
					g++;
				}
				g += 100;
			}
		}
	`)
	f := CloneFunc(fn(t, u, "f"))
	Substitute(f, map[*cc.VarSym]int64{u.Globals["mode"]: 0})
	Optimize(f)
	fp := Fingerprint(f)
	if !strings.Contains(fp, "switch") {
		t.Errorf("switch with continue was unsafely folded: %s", fp)
	}
}
