package mvir

import "repro/internal/cc"

// AssignOSRLabels stamps every loop and call in f's body with a
// variant-invariant logical label (1..N for loops, 1..M for calls),
// walking the body in deterministic source order. It must run on the
// pristine declaration *before* variant cloning: CloneFunc copies the
// label fields, so every clone — and the generic — carries the same
// id for the same source construct. The optimizer only deletes or
// folds nodes (it never merges or duplicates loops/calls), so a label
// surviving into two variants always names the same source point;
// labels elided from a variant simply have no mapped OSR point there.
func AssignOSRLabels(f *cc.FuncDecl) {
	if f.Body == nil {
		return
	}
	nextLoop, nextCall := 0, 0
	var walkE func(e cc.Expr)
	var walkS func(s cc.Stmt)
	walkE = func(e cc.Expr) {
		switch e := e.(type) {
		case nil:
		case *cc.Unary:
			walkE(e.X)
		case *cc.Binary:
			walkE(e.X)
			walkE(e.Y)
		case *cc.Assign:
			walkE(e.LHS)
			walkE(e.RHS)
		case *cc.IncDec:
			walkE(e.X)
		case *cc.Call:
			walkE(e.Fn)
			for _, a := range e.Args {
				walkE(a)
			}
			nextCall++
			e.OSR = nextCall
		case *cc.Index:
			walkE(e.Base)
			walkE(e.Idx)
		case *cc.Cast:
			walkE(e.X)
		case *cc.Cond:
			walkE(e.C)
			walkE(e.T)
			walkE(e.F)
		case *cc.Builtin:
			for _, a := range e.Args {
				walkE(a)
			}
		}
	}
	walkS = func(s cc.Stmt) {
		switch s := s.(type) {
		case nil:
		case *cc.Block:
			for _, st := range s.Stmts {
				walkS(st)
			}
		case *cc.DeclStmt:
			walkE(s.Init)
		case *cc.ExprStmt:
			walkE(s.X)
		case *cc.If:
			walkE(s.Cond)
			walkS(s.Then)
			walkS(s.Else)
		case *cc.While:
			nextLoop++
			s.OSR = nextLoop
			walkE(s.Cond)
			walkS(s.Body)
		case *cc.DoWhile:
			nextLoop++
			s.OSR = nextLoop
			walkS(s.Body)
			walkE(s.Cond)
		case *cc.For:
			nextLoop++
			s.OSR = nextLoop
			walkS(s.Init)
			walkE(s.Cond)
			walkE(s.Post)
			walkS(s.Body)
		case *cc.Switch:
			walkE(s.Cond)
			for _, cs := range s.Cases {
				for _, st := range cs.Stmts {
					walkS(st)
				}
			}
		case *cc.Return:
			walkE(s.X)
		case *cc.Break, *cc.Continue, *cc.Empty:
		}
	}
	walkS(f.Body)
}
