package mvir

import (
	"strings"
	"testing"

	"repro/internal/cc"
)

// kitchenSink exercises every AST node kind the cloner must handle.
const kitchenSink = `
	enum Mode { OFF, ON };
	multiverse enum Mode mode;
	char buf[32];
	long sink;
	long helper(long x) { return x; }
	long (*hook)(long);

	long everything(long p, long* q) {
		long acc = 0;
		int narrow = (int)p;
		acc += narrow;
		acc = acc * 2 - 1;
		acc |= p & 3;
		acc ^= p;
		acc <<= 1;
		acc >>= 1;
		if (mode == ON && p > 0 || !q) { acc++; } else { acc--; }
		while (acc > 100) { acc /= 2; }
		do { acc++; } while (acc < 0);
		for (long i = 0; i < 3; i++) {
			if (i == 1) { continue; }
			if (i == 2) { break; }
			acc += buf[i];
		}
		buf[0] = (char)acc;
		*q = acc;
		q[1] = helper(acc);
		long t = acc > 0 ? acc : -acc;
		acc = t;
		sink = __xchg((ulong*)&sink, acc);
		acc -= sink;
		long old = acc--;
		acc += old;
		hook = helper;
		acc += hook(1);
		;
		return acc + "x"[0];
	}
`

func TestCloneKitchenSink(t *testing.T) {
	u := parse(t, kitchenSink)
	f := fn(t, u, "everything")
	clone := CloneFunc(f)
	if Fingerprint(f) != Fingerprint(clone) {
		t.Fatal("clone fingerprint differs from original")
	}
	// Optimizing the clone must leave the original untouched.
	before := Fingerprint(f)
	Substitute(clone, map[*cc.VarSym]int64{u.Globals["mode"]: 1})
	Optimize(clone)
	if Fingerprint(f) != before {
		t.Fatal("optimizing the clone mutated the original")
	}
}

func TestCloneSharesGlobalsOnly(t *testing.T) {
	u := parse(t, kitchenSink)
	f := fn(t, u, "everything")
	clone := CloneFunc(f)
	// Globals referenced from both must be the same symbol objects.
	var origGlobals, cloneGlobals []*cc.VarSym
	collect := func(fd *cc.FuncDecl, out *[]*cc.VarSym) {
		WalkExprs(fd, func(e cc.Expr) {
			if vr, ok := e.(*cc.VarRef); ok && vr.Sym != nil && vr.Sym.IsGlobalData() {
				*out = append(*out, vr.Sym)
			}
		})
	}
	collect(f, &origGlobals)
	collect(clone, &cloneGlobals)
	if len(origGlobals) == 0 || len(origGlobals) != len(cloneGlobals) {
		t.Fatalf("global refs: %d vs %d", len(origGlobals), len(cloneGlobals))
	}
	for i := range origGlobals {
		if origGlobals[i] != cloneGlobals[i] {
			t.Fatalf("global %d not shared", i)
		}
	}
	// Locals must all be distinct objects.
	origLocals := map[*cc.VarSym]bool{}
	WalkExprs(f, func(e cc.Expr) {
		if vr, ok := e.(*cc.VarRef); ok && vr.Sym != nil &&
			(vr.Sym.Storage == cc.StorageLocal || vr.Sym.Storage == cc.StorageParam) {
			origLocals[vr.Sym] = true
		}
	})
	WalkExprs(clone, func(e cc.Expr) {
		if vr, ok := e.(*cc.VarRef); ok && vr.Sym != nil &&
			(vr.Sym.Storage == cc.StorageLocal || vr.Sym.Storage == cc.StorageParam) {
			if origLocals[vr.Sym] {
				t.Fatalf("local %q shared between clone and original", vr.Sym.Name)
			}
		}
	})
}

func TestHasSideEffects(t *testing.T) {
	u := parse(t, `
		long g;
		long f(void) { return 1; }
		long probe(long a) {
			long pure = a + g * 2;
			long call = f();
			long assign = (g = 1);
			g++;
			return pure + call + assign;
		}
	`)
	probe := fn(t, u, "probe")
	var exprs []cc.Expr
	WalkExprs(probe, func(e cc.Expr) {
		exprs = append(exprs, e)
	})
	// Find the top-level initializers by scanning DeclStmts.
	decls := probe.Body.Stmts
	pure := decls[0].(*cc.DeclStmt).Init
	call := decls[1].(*cc.DeclStmt).Init
	assign := decls[2].(*cc.DeclStmt).Init
	inc := decls[3].(*cc.ExprStmt).X
	if HasSideEffects(pure) {
		t.Error("pure arithmetic flagged as side-effecting")
	}
	if !HasSideEffects(call) {
		t.Error("call not flagged")
	}
	if !HasSideEffects(assign) {
		t.Error("assignment not flagged")
	}
	if !HasSideEffects(inc) {
		t.Error("increment not flagged")
	}
}

func TestFingerprintCoversAllNodes(t *testing.T) {
	u := parse(t, kitchenSink)
	fp := Fingerprint(fn(t, u, "everything"))
	// Every construct leaves a trace; unknown nodes would print ?T.
	if strings.Contains(fp, "?") && !strings.Contains(fp, "?:") {
		t.Errorf("fingerprint contains unknown-node marker: %s", fp)
	}
	for _, want := range []string{"while", "do", "for", "if", "break;", "continue;", "(call", "(?:", "(__xchg"} {
		if !strings.Contains(fp, want) {
			t.Errorf("fingerprint missing %q", want)
		}
	}
}

func TestOptimizeKitchenSinkPreservesShape(t *testing.T) {
	u := parse(t, kitchenSink)
	f := CloneFunc(fn(t, u, "everything"))
	Optimize(f)
	fp := Fingerprint(f)
	// Calls with side effects must survive.
	for _, want := range []string{"helper", "__xchg"} {
		if !strings.Contains(fp, want) {
			t.Errorf("optimizer dropped %q: %s", want, fp)
		}
	}
}

func TestSubstituteEnumSwitch(t *testing.T) {
	u := parse(t, kitchenSink)
	f := CloneFunc(fn(t, u, "everything"))
	warns := Substitute(f, map[*cc.VarSym]int64{u.Globals["mode"]: 0})
	if len(warns) != 0 {
		t.Errorf("warnings: %v", warns)
	}
	Optimize(f)
	if strings.Contains(Fingerprint(f), "g:mode") {
		t.Error("enum switch read survived substitution")
	}
}
