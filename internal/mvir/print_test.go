package mvir

import (
	"strings"
	"testing"

	"repro/internal/cc"
)

// roundTrip prints the named function, splices it back into the
// declaration preamble, re-parses, and compares fingerprints.
func roundTrip(t *testing.T, preamble, fnSrc, fnName string) {
	t.Helper()
	u1 := parse(t, preamble+fnSrc)
	f1 := fn(t, u1, fnName)
	printed := cc.FormatFunc(f1)
	u2, err := cc.Parse("roundtrip.mvc", preamble+printed)
	if err != nil {
		t.Fatalf("re-parse failed: %v\nprinted:\n%s", err, printed)
	}
	if err := cc.Check(u2); err != nil {
		t.Fatalf("re-check failed: %v\nprinted:\n%s", err, printed)
	}
	f2 := fn(t, u2, fnName)
	if Fingerprint(f1) != Fingerprint(f2) {
		t.Fatalf("round trip changed semantics:\noriginal: %s\nreparsed: %s\nprinted:\n%s",
			Fingerprint(f1), Fingerprint(f2), printed)
	}
}

func TestPrintRoundTripKitchenSink(t *testing.T) {
	// Reuse the all-constructs program from the clone tests.
	idx := strings.Index(kitchenSink, "long everything")
	preamble := kitchenSink[:idx]
	fnSrc := kitchenSink[idx:]
	roundTrip(t, preamble, fnSrc, "everything")
}

func TestPrintRoundTripControlFlow(t *testing.T) {
	roundTrip(t, "long g;\n", `
		long f(long n) {
			long acc = 0;
			for (long i = 0; i < n; i++) {
				switch (i % 4) {
				case 0:
					acc += 1;
					break;
				case 1:
				case 2:
					acc -= 1;
					break;
				default:
					continue;
				}
				if (acc > 100) { break; }
			}
			do { acc--; } while (acc > 50);
			while (acc < 0) { acc += 3; }
			return acc;
		}
	`, "f")
}

func TestPrintRoundTripPrecedence(t *testing.T) {
	roundTrip(t, "", `
		long f(long a, long b, long c) {
			long r = a + b * c - (a + b) * c;
			r += a << 2 | b & c ^ (a | b);
			r -= a < b == (c > a);
			r *= -(-a) + ~(b - 1);
			r = a ? b : c ? a : b;
			r = (a ? b : c) + 1;
			r = !(a && b) || c;
			return r - -1;
		}
	`, "f")
}

func TestPrintRoundTripShadowing(t *testing.T) {
	roundTrip(t, "", `
		long f(long x) {
			long y = x;
			{
				long x = 2;
				y += x;
				{
					long x = 3;
					y += x;
				}
			}
			return y + x;
		}
	`, "f")
}

func TestPrintSpecializedVariant(t *testing.T) {
	// The mvcc -dump-variants use case: print a clone after
	// substitution + optimization, re-parse, same semantics.
	preamble := `
		multiverse int A;
		void work(void);
	`
	u := parse(t, preamble+`
		multiverse void f(long n) {
			for (long i = 0; i < n; i++) {
				if (A) { work(); }
			}
		}
	`)
	clone := CloneFunc(fn(t, u, "f"))
	Substitute(clone, map[*cc.VarSym]int64{u.Globals["A"]: 0})
	Optimize(clone)
	printed := cc.FormatFunc(clone)
	if strings.Contains(printed, "work") {
		t.Errorf("A=0 variant still mentions work():\n%s", printed)
	}
	u2, err := cc.Parse("v.mvc", preamble+printed)
	if err != nil {
		t.Fatalf("%v\n%s", err, printed)
	}
	if err := cc.Check(u2); err != nil {
		t.Fatalf("%v\n%s", err, printed)
	}
	if Fingerprint(clone) != Fingerprint(fn(t, u2, "f")) {
		t.Errorf("variant round trip diverged:\n%s", printed)
	}
}

func TestPrintNegativeLiteralsSafely(t *testing.T) {
	roundTrip(t, "", `
		long f(long a) {
			switch (a) {
			case 0:
				return a - -3;
			}
			return -(-a);
		}
	`, "f")
	// The optimizer can synthesize negative literals in case labels'
	// position via folding; printing must keep them parseable.
	s := cc.FormatExpr(mustExpr(t, "1 - 2"))
	if s == "" {
		t.Fatal("empty expression print")
	}
}

func mustExpr(t *testing.T, src string) cc.Expr {
	t.Helper()
	u, err := cc.Parse("e.mvc", "long f(void) { return "+src+"; }")
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.Check(u); err != nil {
		t.Fatal(err)
	}
	ret := u.Globals["f"].Func.Body.Stmts[0].(*cc.Return)
	return ret.X
}
