package mvir

import "repro/internal/cc"

// WalkExprs calls fn for every expression node in f's body, in
// evaluation order (parents after operands is not guaranteed; fn is
// called on the node before its children).
func WalkExprs(f *cc.FuncDecl, fn func(cc.Expr)) {
	if f.Body == nil {
		return
	}
	walkStmtExprs(f.Body, fn)
}

func walkStmtExprs(s cc.Stmt, fn func(cc.Expr)) {
	switch s := s.(type) {
	case nil:
	case *cc.Block:
		for _, st := range s.Stmts {
			walkStmtExprs(st, fn)
		}
	case *cc.DeclStmt:
		walkExpr(s.Init, fn)
	case *cc.ExprStmt:
		walkExpr(s.X, fn)
	case *cc.If:
		walkExpr(s.Cond, fn)
		walkStmtExprs(s.Then, fn)
		walkStmtExprs(s.Else, fn)
	case *cc.While:
		walkExpr(s.Cond, fn)
		walkStmtExprs(s.Body, fn)
	case *cc.DoWhile:
		walkStmtExprs(s.Body, fn)
		walkExpr(s.Cond, fn)
	case *cc.For:
		walkStmtExprs(s.Init, fn)
		walkExpr(s.Cond, fn)
		walkExpr(s.Post, fn)
		walkStmtExprs(s.Body, fn)
	case *cc.Switch:
		walkExpr(s.Cond, fn)
		for _, cs := range s.Cases {
			for _, st := range cs.Stmts {
				walkStmtExprs(st, fn)
			}
		}
	case *cc.Return:
		walkExpr(s.X, fn)
	case *cc.Break, *cc.Continue, *cc.Empty:
	}
}

func walkExpr(e cc.Expr, fn func(cc.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch e := e.(type) {
	case *cc.Unary:
		walkExpr(e.X, fn)
	case *cc.Binary:
		walkExpr(e.X, fn)
		walkExpr(e.Y, fn)
	case *cc.Assign:
		walkExpr(e.LHS, fn)
		walkExpr(e.RHS, fn)
	case *cc.IncDec:
		walkExpr(e.X, fn)
	case *cc.Call:
		walkExpr(e.Fn, fn)
		for _, a := range e.Args {
			walkExpr(a, fn)
		}
	case *cc.Index:
		walkExpr(e.Base, fn)
		walkExpr(e.Idx, fn)
	case *cc.Cast:
		walkExpr(e.X, fn)
	case *cc.Cond:
		walkExpr(e.C, fn)
		walkExpr(e.T, fn)
		walkExpr(e.F, fn)
	case *cc.Builtin:
		for _, a := range e.Args {
			walkExpr(a, fn)
		}
	}
}

// HasSideEffects reports whether evaluating e can change program state
// (assignments, calls, builtins, loads are considered pure; loads of
// volatile state do not exist in MVC).
func HasSideEffects(e cc.Expr) bool {
	found := false
	walkExpr(e, func(x cc.Expr) {
		switch x.(type) {
		case *cc.Assign, *cc.IncDec, *cc.Call, *cc.Builtin:
			found = true
		}
	})
	return found
}

// assignedLocals collects the local/param symbols assigned (or
// inc/dec'ed) anywhere inside the statement.
func assignedLocals(s cc.Stmt, out map[*cc.VarSym]bool) {
	walkStmtExprs(s, func(e cc.Expr) {
		var target cc.Expr
		switch e := e.(type) {
		case *cc.Assign:
			target = e.LHS
		case *cc.IncDec:
			target = e.X
		default:
			return
		}
		if vr, ok := target.(*cc.VarRef); ok && vr.Sym != nil &&
			(vr.Sym.Storage == cc.StorageLocal || vr.Sym.Storage == cc.StorageParam) {
			out[vr.Sym] = true
		}
	})
}

// addrTakenLocals collects local/param symbols whose address is taken
// in f. Their values can change through pointers, so constant
// propagation must never track them.
func addrTakenLocals(f *cc.FuncDecl) map[*cc.VarSym]bool {
	out := make(map[*cc.VarSym]bool)
	WalkExprs(f, func(e cc.Expr) {
		u, ok := e.(*cc.Unary)
		if !ok || u.Op != "&" {
			return
		}
		if vr, ok := u.X.(*cc.VarRef); ok && vr.Sym != nil &&
			(vr.Sym.Storage == cc.StorageLocal || vr.Sym.Storage == cc.StorageParam) {
			out[vr.Sym] = true
		}
	})
	return out
}

// localReads counts reads of each local/param symbol in f (writes via
// Assign LHS / IncDec do not count as reads, but compound assignments
// do).
func localReads(f *cc.FuncDecl) map[*cc.VarSym]int {
	counts := make(map[*cc.VarSym]int)
	var countExpr func(e cc.Expr)
	read := func(e cc.Expr) {
		if vr, ok := e.(*cc.VarRef); ok && vr.Sym != nil &&
			(vr.Sym.Storage == cc.StorageLocal || vr.Sym.Storage == cc.StorageParam) {
			counts[vr.Sym]++
		}
	}
	countExpr = func(e cc.Expr) {
		switch e := e.(type) {
		case nil:
		case *cc.IntLit, *cc.StrLit:
		case *cc.VarRef:
			read(e)
		case *cc.Unary:
			countExpr(e.X)
		case *cc.Binary:
			countExpr(e.X)
			countExpr(e.Y)
		case *cc.Assign:
			if vr, ok := e.LHS.(*cc.VarRef); ok {
				if e.Op != "=" {
					read(vr) // compound assignment reads the target
				}
			} else {
				countExpr(e.LHS)
			}
			countExpr(e.RHS)
		case *cc.IncDec:
			if _, ok := e.X.(*cc.VarRef); !ok {
				countExpr(e.X)
			}
		case *cc.Call:
			countExpr(e.Fn)
			for _, a := range e.Args {
				countExpr(a)
			}
		case *cc.Index:
			countExpr(e.Base)
			countExpr(e.Idx)
		case *cc.Cast:
			countExpr(e.X)
		case *cc.Cond:
			countExpr(e.C)
			countExpr(e.T)
			countExpr(e.F)
		case *cc.Builtin:
			for _, a := range e.Args {
				countExpr(a)
			}
		}
	}
	var walk func(s cc.Stmt)
	walk = func(s cc.Stmt) {
		switch s := s.(type) {
		case nil:
		case *cc.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *cc.DeclStmt:
			countExpr(s.Init)
		case *cc.ExprStmt:
			countExpr(s.X)
		case *cc.If:
			countExpr(s.Cond)
			walk(s.Then)
			walk(s.Else)
		case *cc.While:
			countExpr(s.Cond)
			walk(s.Body)
		case *cc.DoWhile:
			walk(s.Body)
			countExpr(s.Cond)
		case *cc.For:
			walk(s.Init)
			countExpr(s.Cond)
			countExpr(s.Post)
			walk(s.Body)
		case *cc.Switch:
			countExpr(s.Cond)
			for _, cs := range s.Cases {
				for _, st := range cs.Stmts {
					walk(st)
				}
			}
		case *cc.Return:
			countExpr(s.X)
		}
	}
	if f.Body != nil {
		walk(f.Body)
	}
	return counts
}
