package mvir

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/cc"
)

// Fingerprint returns a canonical textual form of f's body in which
// local variables are numbered by first appearance. Two functions with
// the same fingerprint compile to identical code, so the variant
// generator merges variants whose optimized fingerprints coincide
// (paper §3: "merge function bodies that become equal after
// optimization").
func Fingerprint(f *cc.FuncDecl) string {
	p := &printer{locals: make(map[*cc.VarSym]int)}
	for _, param := range f.Params {
		p.localID(param)
	}
	fmt.Fprintf(&p.sb, "func(%d)%s{", len(f.Params), typeSig(f.Ret))
	if f.Body != nil {
		p.stmt(f.Body)
	}
	p.sb.WriteString("}")
	return p.sb.String()
}

// FingerprintHash returns a short stable hash of the fingerprint,
// usable as a map key or symbol suffix.
func FingerprintHash(f *cc.FuncDecl) string {
	sum := sha256.Sum256([]byte(Fingerprint(f)))
	return hex.EncodeToString(sum[:8])
}

type printer struct {
	sb     strings.Builder
	locals map[*cc.VarSym]int
}

func (p *printer) localID(s *cc.VarSym) int {
	if id, ok := p.locals[s]; ok {
		return id
	}
	id := len(p.locals)
	p.locals[s] = id
	return id
}

func typeSig(t *cc.Type) string {
	if t == nil {
		return "?"
	}
	switch t.Kind {
	case cc.KindVoid:
		return "v"
	case cc.KindBool:
		return "b"
	case cc.KindInt, cc.KindEnum:
		sign := "u"
		if t.IsSigned() {
			sign = "i"
		}
		return fmt.Sprintf("%s%d", sign, t.ByteSize()*8)
	case cc.KindPtr:
		return "p" + typeSig(t.Elem)
	case cc.KindArray:
		return fmt.Sprintf("a%d%s", t.ArrayLen, typeSig(t.Elem))
	case cc.KindFunc:
		var ps []string
		for _, q := range t.Params {
			ps = append(ps, typeSig(q))
		}
		return fmt.Sprintf("f(%s)%s", strings.Join(ps, ","), typeSig(t.Ret))
	}
	return "?"
}

func (p *printer) expr(e cc.Expr) {
	switch e := e.(type) {
	case nil:
		p.sb.WriteString("_")
	case *cc.IntLit:
		fmt.Fprintf(&p.sb, "#%d:%s", e.Value, typeSig(e.Type()))
	case *cc.StrLit:
		fmt.Fprintf(&p.sb, "%q", e.Value)
	case *cc.VarRef:
		if e.Sym != nil && (e.Sym.Storage == cc.StorageLocal || e.Sym.Storage == cc.StorageParam) {
			fmt.Fprintf(&p.sb, "l%d", p.localID(e.Sym))
		} else {
			fmt.Fprintf(&p.sb, "g:%s", e.Name)
		}
	case *cc.Unary:
		fmt.Fprintf(&p.sb, "(%s", e.Op)
		p.expr(e.X)
		p.sb.WriteString(")")
	case *cc.Binary:
		fmt.Fprintf(&p.sb, "(%s:%s ", e.Op, typeSig(e.Type()))
		p.expr(e.X)
		p.sb.WriteString(" ")
		p.expr(e.Y)
		p.sb.WriteString(")")
	case *cc.Assign:
		fmt.Fprintf(&p.sb, "(%s ", e.Op)
		p.expr(e.LHS)
		p.sb.WriteString(" ")
		p.expr(e.RHS)
		p.sb.WriteString(")")
	case *cc.IncDec:
		fmt.Fprintf(&p.sb, "(%s ", e.Op)
		p.expr(e.X)
		p.sb.WriteString(")")
	case *cc.Call:
		p.sb.WriteString("(call ")
		p.expr(e.Fn)
		for _, a := range e.Args {
			p.sb.WriteString(" ")
			p.expr(a)
		}
		p.sb.WriteString(")")
	case *cc.Index:
		p.sb.WriteString("(idx ")
		p.expr(e.Base)
		p.sb.WriteString(" ")
		p.expr(e.Idx)
		p.sb.WriteString(")")
	case *cc.Cast:
		fmt.Fprintf(&p.sb, "(cast:%s ", typeSig(e.To))
		p.expr(e.X)
		p.sb.WriteString(")")
	case *cc.Cond:
		p.sb.WriteString("(?: ")
		p.expr(e.C)
		p.sb.WriteString(" ")
		p.expr(e.T)
		p.sb.WriteString(" ")
		p.expr(e.F)
		p.sb.WriteString(")")
	case *cc.Builtin:
		fmt.Fprintf(&p.sb, "(%s", e.Name)
		for _, a := range e.Args {
			p.sb.WriteString(" ")
			p.expr(a)
		}
		p.sb.WriteString(")")
	default:
		fmt.Fprintf(&p.sb, "?%T", e)
	}
}

func (p *printer) stmt(s cc.Stmt) {
	switch s := s.(type) {
	case nil:
	case *cc.Block:
		p.sb.WriteString("{")
		for _, st := range s.Stmts {
			p.stmt(st)
		}
		p.sb.WriteString("}")
	case *cc.DeclStmt:
		fmt.Fprintf(&p.sb, "decl l%d:%s", p.localID(s.Sym), typeSig(s.Sym.Type))
		if s.Init != nil {
			p.sb.WriteString("=")
			p.expr(s.Init)
		}
		p.sb.WriteString(";")
	case *cc.ExprStmt:
		p.expr(s.X)
		p.sb.WriteString(";")
	case *cc.If:
		p.sb.WriteString("if ")
		p.expr(s.Cond)
		p.stmt(s.Then)
		if s.Else != nil {
			p.sb.WriteString("else")
			p.stmt(s.Else)
		}
	case *cc.While:
		p.sb.WriteString("while ")
		p.expr(s.Cond)
		p.stmt(s.Body)
	case *cc.DoWhile:
		p.sb.WriteString("do")
		p.stmt(s.Body)
		p.sb.WriteString("while ")
		p.expr(s.Cond)
		p.sb.WriteString(";")
	case *cc.For:
		p.sb.WriteString("for(")
		p.stmt(s.Init)
		p.sb.WriteString(";")
		p.expr(s.Cond)
		p.sb.WriteString(";")
		p.expr(s.Post)
		p.sb.WriteString(")")
		p.stmt(s.Body)
	case *cc.Switch:
		p.sb.WriteString("switch ")
		p.expr(s.Cond)
		p.sb.WriteString("{")
		for _, cs := range s.Cases {
			if cs.IsDefault {
				p.sb.WriteString("default:")
			} else {
				fmt.Fprintf(&p.sb, "case %d:", cs.Val)
			}
			for _, st := range cs.Stmts {
				p.stmt(st)
			}
		}
		p.sb.WriteString("}")
	case *cc.Return:
		p.sb.WriteString("return ")
		p.expr(s.X)
		p.sb.WriteString(";")
	case *cc.Break:
		p.sb.WriteString("break;")
	case *cc.Continue:
		p.sb.WriteString("continue;")
	case *cc.Empty:
	default:
		fmt.Fprintf(&p.sb, "?%T", s)
	}
}
