package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDecodeNeverPanicsOnRandomBytes throws random byte soup at the
// decoder; it must return an error or a well-formed instruction, never
// panic, and never claim a length beyond the input.
func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(b []byte) bool {
		in, err := Decode(b)
		if err != nil {
			return true
		}
		return in.Len > 0 && in.Len <= len(b)
	}
	cfg := &quick.Config{MaxCount: 5000}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeAllSingleOpcodes probes every opcode byte with a generous
// zero-filled tail.
func TestDecodeAllSingleOpcodes(t *testing.T) {
	for op := 0; op < 256; op++ {
		buf := make([]byte, 16)
		buf[0] = byte(op)
		switch Op(op) {
		case NOPN:
			buf[1] = 4
		case LD, LDS, ST:
			buf[3] = 8 // valid access size
		}
		in, err := Decode(buf)
		if Op(op).Valid() {
			if err != nil {
				t.Errorf("valid opcode %#02x failed to decode: %v", op, err)
			} else if in.Op != Op(op) {
				t.Errorf("opcode %#02x decoded as %v", op, in.Op)
			}
		} else if err == nil {
			t.Errorf("invalid opcode %#02x decoded", op)
		}
	}
}

// randomInst emits one random valid instruction and returns its
// expected decoded form.
func randomInst(rng *rand.Rand, a *Asm) Inst {
	reg := func() Reg { return Reg(rng.Intn(NumRegs)) }
	size := []int{1, 2, 4, 8}[rng.Intn(4)]
	imm32 := int32(rng.Uint32())
	imm64 := int64(rng.Uint64())
	switch rng.Intn(15) {
	case 14:
		a.Brk()
		return Inst{Op: BRK, Len: 1}
	case 0:
		a.Movi(0, imm64)
		return Inst{Op: MOVI, Len: 10, Rd: 0, Imm: imm64}
	case 1:
		r1, r2 := reg(), reg()
		a.Mov(r1, r2)
		return Inst{Op: MOV, Len: 3, Rd: r1, Rs: r2}
	case 2:
		r1, r2 := reg(), reg()
		a.Ld(r1, r2, size, imm32)
		return Inst{Op: LD, Len: 8, Rd: r1, Rs: r2, Size: size, Imm: int64(imm32)}
	case 3:
		r1, r2 := reg(), reg()
		a.St(r1, r2, size, imm32)
		return Inst{Op: ST, Len: 8, Rd: r1, Rs: r2, Size: size, Imm: int64(imm32)}
	case 4:
		ops := []Op{ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR, SAR, UDIV, UMOD}
		op := ops[rng.Intn(len(ops))]
		r1, r2 := reg(), reg()
		a.Alu(op, r1, r2)
		return Inst{Op: op, Len: 3, Rd: r1, Rs: r2}
	case 5:
		ops := []Op{ADDI, SUBI, MULI, DIVI, MODI, ANDI, ORI, XORI, SHLI, SHRI, SARI}
		op := ops[rng.Intn(len(ops))]
		r := reg()
		a.AluI(op, r, imm32)
		return Inst{Op: op, Len: 6, Rd: r, Imm: int64(imm32)}
	case 6:
		cc := Cond(rng.Intn(int(NumConds)))
		a.Jcc(cc, imm32)
		return Inst{Op: JCC, Len: 6, Cond: cc, Imm: int64(imm32)}
	case 7:
		a.Call(imm32)
		return Inst{Op: CALL, Len: 5, Imm: int64(imm32)}
	case 8:
		r := reg()
		a.CallR(r)
		return Inst{Op: CLLR, Len: 5, Rs: r}
	case 9:
		a.CallM(uint64(imm64))
		return Inst{Op: CLLM, Len: 9, Imm: imm64}
	case 10:
		r := reg()
		cc := Cond(rng.Intn(int(NumConds)))
		a.SetCC(r, cc)
		return Inst{Op: SETCC, Len: 3, Rd: r, Cond: cc}
	case 11:
		n := 2 + rng.Intn(254)
		a.Nop(n)
		return Inst{Op: NOPN, Len: n}
	case 12:
		r1, r2 := reg(), reg()
		a.Lds(r1, r2, size, imm32)
		return Inst{Op: LDS, Len: 8, Rd: r1, Rs: r2, Size: size, Imm: int64(imm32)}
	default:
		r := reg()
		a.Lea(r, reg(), imm32)
		in, err := Decode(a.Bytes()[a.Len()-7:])
		if err != nil {
			panic(err)
		}
		return in
	}
}

// TestBrkEncoding pins the properties the text-poke protocol relies
// on: BRK is exactly one byte (so overwriting the first byte of any
// instruction is a single atomic store), it decodes and formats as a
// first-class opcode, and it decodes identically regardless of the
// garbage that follows it (a mid-poke site holds BRK plus a torn or
// half-written tail).
func TestBrkEncoding(t *testing.T) {
	var a Asm
	a.Brk()
	if got := a.Bytes(); len(got) != 1 || Op(got[0]) != BRK {
		t.Fatalf("Brk encoded as %x, want the single byte %#02x", got, byte(BRK))
	}
	in, err := Decode(a.Bytes())
	if err != nil {
		t.Fatalf("Decode(BRK): %v", err)
	}
	if in.Op != BRK || in.Len != 1 {
		t.Fatalf("Decode(BRK) = %+v, want Op=BRK Len=1", in)
	}
	if !BRK.Valid() {
		t.Fatal("BRK.Valid() = false")
	}
	if s := in.Format(0x1000); s != "brk" {
		t.Fatalf("Format(BRK) = %q, want \"brk\"", s)
	}
	// Any tail after the BRK byte is irrelevant to its decode.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		buf := make([]byte, 1+rng.Intn(12))
		rng.Read(buf)
		buf[0] = byte(BRK)
		in, err := Decode(buf)
		if err != nil || in.Op != BRK || in.Len != 1 {
			t.Fatalf("Decode(BRK + %x) = %+v, %v; want Op=BRK Len=1", buf[1:], in, err)
		}
	}
}

// TestDecodeAtPatchBoundaries models the windows a racing fetch can
// see around a patched call site: truncated prefixes of every real
// instruction must return ErrTruncated (never mis-decode as a shorter
// instruction), and a BRK-first byte always wins regardless of the old
// instruction bytes behind it.
func TestDecodeAtPatchBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		var a Asm
		want := randomInst(rng, &a)
		code := a.Bytes()
		for cut := 0; cut < want.Len; cut++ {
			if cut == 0 {
				if _, err := Decode(nil); err != ErrTruncated {
					t.Fatalf("Decode(empty) = %v, want ErrTruncated", err)
				}
				continue
			}
			in, err := Decode(code[:cut])
			if err == nil && in.Len > cut {
				t.Fatalf("trial %d: decode of %d/%d-byte prefix of %v claims length %d",
					trial, cut, want.Len, want.Op, in.Len)
			}
			// A prefix must either fail or decode as a complete shorter
			// instruction that really is a prefix of the encoding (NOPN
			// padding windows legitimately do this); a 1-byte window of a
			// multi-byte instruction must never succeed unless its first
			// byte is itself a complete instruction.
			if err != nil && err != ErrTruncated && cut < 2 {
				t.Fatalf("trial %d: 1-byte window of %v failed with %v, want ErrTruncated", trial, want.Op, err)
			}
		}
		// Phase 1 of the poke protocol: BRK lands over byte 0 while the
		// old tail is still in place. The decode must be BRK, length 1.
		poked := append([]byte(nil), code...)
		poked[0] = byte(BRK)
		in, err := Decode(poked)
		if err != nil || in.Op != BRK || in.Len != 1 {
			t.Fatalf("trial %d: BRK over %v decoded as %+v, %v", trial, want.Op, in, err)
		}
	}
}

// TestRandomStreamsRoundTrip encodes long random instruction streams
// and verifies the decoder walks them back exactly.
func TestRandomStreamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		var a Asm
		var want []Inst
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			want = append(want, randomInst(rng, &a))
		}
		code := a.Bytes()
		off := 0
		for i, w := range want {
			in, err := Decode(code[off:])
			if err != nil {
				t.Fatalf("trial %d inst %d: %v", trial, i, err)
			}
			if in != w {
				t.Fatalf("trial %d inst %d: got %+v want %+v", trial, i, in, w)
			}
			off += in.Len
		}
		if off != len(code) {
			t.Fatalf("trial %d: stream length mismatch", trial)
		}
	}
}
