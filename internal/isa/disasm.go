package isa

import (
	"fmt"
	"strings"
)

// Format renders a decoded instruction at the given address as
// assembler text. The address is used to resolve relative branch
// targets into absolute ones.
func (in Inst) Format(addr uint64) string {
	end := addr + uint64(in.Len)
	switch in.Op {
	case HLT, NOP, BRK, RET, PAUSE, CLI, STI:
		return in.Op.String()
	case NOPN:
		return fmt.Sprintf("nop%d", in.Len)
	case MOVI:
		return fmt.Sprintf("movi %v, %d", in.Rd, in.Imm)
	case MOV, CMP, ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR, SAR, XCHG, UDIV, UMOD:
		return fmt.Sprintf("%v %v, %v", in.Op, in.Rd, in.Rs)
	case NEG, NOT:
		return fmt.Sprintf("%v %v", in.Op, in.Rd)
	case LD, LDS:
		return fmt.Sprintf("%v%d %v, [%v%+d]", in.Op, in.Size*8, in.Rd, in.Rs, in.Imm)
	case ST:
		return fmt.Sprintf("st%d [%v%+d], %v", in.Size*8, in.Rd, in.Imm, in.Rs)
	case LEA:
		return fmt.Sprintf("lea %v, [%v%+d]", in.Rd, in.Rs, in.Imm)
	case ADDI, SUBI, MULI, DIVI, MODI, ANDI, ORI, XORI, SHLI, SHRI, SARI, CMPI:
		return fmt.Sprintf("%v %v, %d", in.Op, in.Rd, in.Imm)
	case SETCC:
		return fmt.Sprintf("set%v %v", in.Cond, in.Rd)
	case JCC:
		return fmt.Sprintf("j%v %#x", in.Cond, end+uint64(in.Imm))
	case JMP, CALL:
		return fmt.Sprintf("%v %#x", in.Op, end+uint64(in.Imm))
	case CLLR:
		return fmt.Sprintf("callr %v", in.Rs)
	case CLLM:
		return fmt.Sprintf("callm [%#x]", uint64(in.Imm))
	case PUSH, POP, RDTSC:
		return fmt.Sprintf("%v %v", in.Op, in.Rd)
	case SPAD:
		return fmt.Sprintf("spadd %d", in.Imm)
	case HCALL:
		return fmt.Sprintf("hcall %d", in.Imm)
	case OUTB:
		return fmt.Sprintf("outb %d, %v", in.Imm, in.Rs)
	case INB:
		return fmt.Sprintf("inb %v, %d", in.Rd, in.Imm)
	}
	return fmt.Sprintf("op%#02x", uint8(in.Op))
}

// Disassemble renders the instruction stream in code, assuming it is
// loaded at base. Undecodable bytes are rendered as .byte directives
// one at a time so that the stream can resynchronize.
func Disassemble(code []byte, base uint64) string {
	var sb strings.Builder
	off := 0
	for off < len(code) {
		in, err := Decode(code[off:])
		if err != nil {
			fmt.Fprintf(&sb, "%#08x: .byte %#02x\n", base+uint64(off), code[off])
			off++
			continue
		}
		fmt.Fprintf(&sb, "%#08x: %s\n", base+uint64(off), in.Format(base+uint64(off)))
		off += in.Len
	}
	return sb.String()
}
