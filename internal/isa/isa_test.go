package isa

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCondNeg(t *testing.T) {
	for c := Cond(0); c < NumConds; c++ {
		if c.Neg().Neg() != c {
			t.Errorf("Neg(Neg(%v)) = %v, want %v", c, c.Neg().Neg(), c)
		}
		if c.Neg() == c {
			t.Errorf("Neg(%v) must differ from %v", c, c)
		}
	}
}

func TestCondNegEval(t *testing.T) {
	pairs := [][2]int64{{0, 0}, {1, 2}, {2, 1}, {-1, 1}, {1, -1}, {-5, -5},
		{math.MaxInt64, math.MinInt64}, {math.MinInt64, math.MaxInt64}}
	for c := Cond(0); c < NumConds; c++ {
		for _, p := range pairs {
			if c.Eval(p[0], p[1]) == c.Neg().Eval(p[0], p[1]) {
				t.Errorf("cond %v and its negation agree on (%d, %d)", c, p[0], p[1])
			}
		}
	}
}

func TestCondSwapEval(t *testing.T) {
	f := func(a, b int64) bool {
		for c := Cond(0); c < NumConds; c++ {
			if c.Eval(a, b) != c.Swap().Eval(b, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCondEvalSignedVsUnsigned(t *testing.T) {
	// -1 is the largest unsigned value.
	if !LT.Eval(-1, 0) {
		t.Error("LT.Eval(-1, 0) = false, want true (signed)")
	}
	if B.Eval(-1, 0) {
		t.Error("B.Eval(-1, 0) = true, want false (unsigned)")
	}
	if !A.Eval(-1, 0) {
		t.Error("A.Eval(-1, 0) = false, want true (unsigned)")
	}
}

// encodeAll emits one instance of every instruction form and returns
// the expected decoded sequence.
func encodeAll() (*Asm, []Inst) {
	var a Asm
	var want []Inst
	emit := func(f func(*Asm), in Inst) {
		f(&a)
		want = append(want, in)
	}
	emit(func(a *Asm) { a.Hlt() }, Inst{Op: HLT, Len: 1})
	emit(func(a *Asm) { a.Nop(1) }, Inst{Op: NOP, Len: 1})
	emit(func(a *Asm) { a.Nop(2) }, Inst{Op: NOPN, Len: 2})
	emit(func(a *Asm) { a.Nop(5) }, Inst{Op: NOPN, Len: 5})
	emit(func(a *Asm) { a.Nop(255) }, Inst{Op: NOPN, Len: 255})
	emit(func(a *Asm) { a.Movi(3, -12345678901234) }, Inst{Op: MOVI, Len: 10, Rd: 3, Imm: -12345678901234})
	emit(func(a *Asm) { a.Mov(1, 2) }, Inst{Op: MOV, Len: 3, Rd: 1, Rs: 2})
	emit(func(a *Asm) { a.Ld(4, 5, 8, -16) }, Inst{Op: LD, Len: 8, Rd: 4, Rs: 5, Size: 8, Imm: -16})
	emit(func(a *Asm) { a.Lds(4, 5, 2, 100) }, Inst{Op: LDS, Len: 8, Rd: 4, Rs: 5, Size: 2, Imm: 100})
	emit(func(a *Asm) { a.St(6, 7, 4, 8) }, Inst{Op: ST, Len: 8, Rd: 6, Rs: 7, Size: 4, Imm: 8})
	emit(func(a *Asm) { a.Lea(2, SP, 24) }, Inst{Op: LEA, Len: 7, Rd: 2, Rs: SP, Imm: 24})
	for _, op := range []Op{ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR, SAR} {
		op := op
		emit(func(a *Asm) { a.Alu(op, 8, 9) }, Inst{Op: op, Len: 3, Rd: 8, Rs: 9})
	}
	emit(func(a *Asm) { a.Alu(NEG, 3, 0) }, Inst{Op: NEG, Len: 2, Rd: 3})
	emit(func(a *Asm) { a.Alu(NOT, 4, 0) }, Inst{Op: NOT, Len: 2, Rd: 4})
	for _, op := range []Op{ADDI, SUBI, MULI, DIVI, MODI, ANDI, ORI, XORI, SHLI, SHRI, SARI} {
		op := op
		emit(func(a *Asm) { a.AluI(op, 10, -7) }, Inst{Op: op, Len: 6, Rd: 10, Imm: -7})
	}
	emit(func(a *Asm) { a.Cmp(1, 2) }, Inst{Op: CMP, Len: 3, Rd: 1, Rs: 2})
	emit(func(a *Asm) { a.CmpI(1, 42) }, Inst{Op: CMPI, Len: 6, Rd: 1, Imm: 42})
	emit(func(a *Asm) { a.Jcc(NE, -6) }, Inst{Op: JCC, Len: 6, Cond: NE, Imm: -6})
	emit(func(a *Asm) { a.Jmp(1000) }, Inst{Op: JMP, Len: 5, Imm: 1000})
	emit(func(a *Asm) { a.Call(-1000) }, Inst{Op: CALL, Len: 5, Imm: -1000})
	emit(func(a *Asm) { a.CallR(11) }, Inst{Op: CLLR, Len: 5, Rs: 11})
	emit(func(a *Asm) { a.Ret() }, Inst{Op: RET, Len: 1})
	emit(func(a *Asm) { a.Push(12) }, Inst{Op: PUSH, Len: 2, Rd: 12})
	emit(func(a *Asm) { a.Pop(13) }, Inst{Op: POP, Len: 2, Rd: 13})
	emit(func(a *Asm) { a.SpAdd(-64) }, Inst{Op: SPAD, Len: 5, Imm: -64})
	emit(func(a *Asm) { a.Xchg(1, 2) }, Inst{Op: XCHG, Len: 3, Rd: 1, Rs: 2})
	emit(func(a *Asm) { a.Pause() }, Inst{Op: PAUSE, Len: 1})
	emit(func(a *Asm) { a.Cli() }, Inst{Op: CLI, Len: 1})
	emit(func(a *Asm) { a.Sti() }, Inst{Op: STI, Len: 1})
	emit(func(a *Asm) { a.Hcall(3) }, Inst{Op: HCALL, Len: 2, Imm: 3})
	emit(func(a *Asm) { a.Rdtsc(5) }, Inst{Op: RDTSC, Len: 2, Rd: 5})
	emit(func(a *Asm) { a.OutB(1, 6) }, Inst{Op: OUTB, Len: 3, Rs: 6, Imm: 1})
	emit(func(a *Asm) { a.InB(7, 2) }, Inst{Op: INB, Len: 3, Rd: 7, Imm: 2})
	return &a, want
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	a, want := encodeAll()
	code := a.Bytes()
	off := 0
	for i, w := range want {
		in, err := Decode(code[off:])
		if err != nil {
			t.Fatalf("inst %d (%v): decode: %v", i, w.Op, err)
		}
		if in != w {
			t.Errorf("inst %d: decoded %+v, want %+v", i, in, w)
		}
		off += in.Len
	}
	if off != len(code) {
		t.Errorf("decoded %d bytes, encoded %d", off, len(code))
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err != ErrTruncated {
		t.Errorf("Decode(nil) err = %v, want ErrTruncated", err)
	}
	// MOVI truncated after opcode+reg.
	if _, err := Decode([]byte{byte(MOVI), 1, 2, 3}); err != ErrTruncated {
		t.Errorf("truncated MOVI err = %v, want ErrTruncated", err)
	}
	// Unknown opcode.
	if _, err := Decode([]byte{0xFF}); err == nil {
		t.Error("Decode(0xFF) succeeded, want error")
	}
	// Invalid register.
	if _, err := Decode([]byte{byte(MOV), 99, 0}); err == nil {
		t.Error("MOV with register 99 decoded, want error")
	}
	// Invalid size.
	if _, err := Decode([]byte{byte(LD), 0, 0, 3, 0, 0, 0, 0}); err == nil {
		t.Error("LD with size 3 decoded, want error")
	}
	// NOPN length < 2.
	if _, err := Decode([]byte{byte(NOPN), 1}); err == nil {
		t.Error("NOPN with length 1 decoded, want error")
	}
	// Invalid condition.
	if _, err := Decode([]byte{byte(JCC), 200, 0, 0, 0, 0}); err == nil {
		t.Error("JCC with cc 200 decoded, want error")
	}
}

func TestCallSiteEncodingsAreUniform(t *testing.T) {
	var direct, indirect Asm
	direct.Call(0)
	indirect.CallR(3)
	if direct.Len() != CallSiteLen {
		t.Errorf("direct call is %d bytes, want %d", direct.Len(), CallSiteLen)
	}
	if indirect.Len() != CallSiteLen {
		t.Errorf("indirect call is %d bytes, want %d", indirect.Len(), CallSiteLen)
	}
}

func TestEncodeCallPatchesInPlace(t *testing.T) {
	var a Asm
	a.Call(100)
	patched := EncodeCall(-50)
	if len(patched) != CallSiteLen {
		t.Fatalf("EncodeCall length = %d", len(patched))
	}
	in, err := Decode(patched[:])
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != CALL || in.Imm != -50 {
		t.Errorf("patched call decodes to %+v", in)
	}
}

func TestEncodeJmp(t *testing.T) {
	j := EncodeJmp(123)
	in, err := Decode(j[:])
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != JMP || in.Imm != 123 || in.Len != 5 {
		t.Errorf("EncodeJmp decodes to %+v", in)
	}
}

func TestEncodeNopLengths(t *testing.T) {
	for n := 1; n <= 255; n++ {
		b := EncodeNop(n)
		if len(b) != n {
			t.Fatalf("EncodeNop(%d) has %d bytes", n, len(b))
		}
		in, err := Decode(b)
		if err != nil {
			t.Fatalf("EncodeNop(%d): %v", n, err)
		}
		if in.Len != n {
			t.Fatalf("EncodeNop(%d) decodes with length %d", n, in.Len)
		}
	}
}

func TestCallRel(t *testing.T) {
	rel, err := CallRel(0x400000, 0x400100)
	if err != nil {
		t.Fatal(err)
	}
	if rel != 0x100-CallSiteLen {
		t.Errorf("rel = %d, want %d", rel, 0x100-CallSiteLen)
	}
	// Backwards.
	rel, err = CallRel(0x400100, 0x400000)
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(0x400100) + CallSiteLen + int64(rel); got != 0x400000 {
		t.Errorf("backwards target = %#x, want 0x400000", got)
	}
	// Out of range.
	if _, err := CallRel(0, 1<<40); err == nil {
		t.Error("CallRel with 2^40 displacement succeeded, want error")
	}
}

func TestDisassembleResync(t *testing.T) {
	var a Asm
	a.Movi(1, 7)
	code := append(a.Bytes(), 0xFF) // trailing junk
	out := Disassemble(code, 0x1000)
	if !strings.Contains(out, "movi r1, 7") {
		t.Errorf("disassembly missing movi: %q", out)
	}
	if !strings.Contains(out, ".byte 0xff") {
		t.Errorf("disassembly missing .byte for junk: %q", out)
	}
}

func TestDisassembleBranchTargets(t *testing.T) {
	var a Asm
	a.Jmp(11) // at 0x1000, len 5, target 0x1000+5+11 = 0x1010
	out := Disassemble(a.Bytes(), 0x1000)
	if !strings.Contains(out, "jmp 0x1010") {
		t.Errorf("jmp target not resolved: %q", out)
	}
}

func TestFormatAllOps(t *testing.T) {
	a, want := encodeAll()
	_ = a
	for _, in := range want {
		s := in.Format(0x400000)
		if s == "" || strings.Contains(s, "op0x") {
			t.Errorf("Format(%v) = %q", in.Op, s)
		}
	}
}

func TestNopPanics(t *testing.T) {
	for _, n := range []int{0, -1, 256} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Nop(%d) did not panic", n)
				}
			}()
			var a Asm
			a.Nop(n)
		}()
	}
}

func TestAluPanicsOnNonALU(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Alu(JMP) did not panic")
		}
	}()
	var a Asm
	a.Alu(JMP, 0, 0)
}

func TestRegString(t *testing.T) {
	if Reg(15).String() != "sp" {
		t.Errorf("r15 = %q, want sp", Reg(15).String())
	}
	if Reg(3).String() != "r3" {
		t.Errorf("Reg(3) = %q", Reg(3).String())
	}
}

func TestOpValid(t *testing.T) {
	if !CALL.Valid() {
		t.Error("CALL not valid")
	}
	if Op(0xEE).Valid() {
		t.Error("0xEE reported valid")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a1, _ := encodeAll()
	a2, _ := encodeAll()
	if !bytes.Equal(a1.Bytes(), a2.Bytes()) {
		t.Error("encoding is not deterministic")
	}
}
