package isa

import (
	"encoding/binary"
	"fmt"
)

// Asm incrementally encodes m64 instructions into a byte buffer.
// The zero value is ready to use.
type Asm struct {
	buf []byte
}

// Bytes returns the encoded instruction stream. The returned slice
// aliases the assembler's buffer.
func (a *Asm) Bytes() []byte { return a.buf }

// Len returns the current length of the instruction stream, which is
// also the offset at which the next instruction will be placed.
func (a *Asm) Len() int { return len(a.buf) }

func (a *Asm) op(o Op)     { a.buf = append(a.buf, byte(o)) }
func (a *Asm) b(v byte)    { a.buf = append(a.buf, v) }
func (a *Asm) i32(v int32) { a.buf = binary.LittleEndian.AppendUint32(a.buf, uint32(v)) }
func (a *Asm) i64(v int64) { a.buf = binary.LittleEndian.AppendUint64(a.buf, uint64(v)) }

// Hlt encodes HLT.
func (a *Asm) Hlt() { a.op(HLT) }

// Brk encodes the 1-byte BRK breakpoint trap. Cross-modifying code
// writes its single byte over the first byte of a live instruction
// (m64's text_poke_bp analogue): a concurrent fetch either decodes the
// old instruction whole or traps resumably.
func (a *Asm) Brk() { a.op(BRK) }

// Nop encodes a no-op of total length n bytes (n >= 1).
func (a *Asm) Nop(n int) {
	switch {
	case n < 1:
		panic("isa: Nop length must be >= 1")
	case n == 1:
		a.op(NOP)
	case n > 255:
		panic("isa: Nop length must be <= 255")
	default:
		a.op(NOPN)
		a.b(byte(n))
		for i := 0; i < n-2; i++ {
			a.b(0)
		}
	}
}

// Movi encodes rd <- imm64.
func (a *Asm) Movi(rd Reg, imm int64) { a.op(MOVI); a.b(byte(rd)); a.i64(imm) }

// Mov encodes rd <- rs.
func (a *Asm) Mov(rd, rs Reg) { a.op(MOV); a.b(byte(rd)); a.b(byte(rs)) }

func checkSize(size int) {
	switch size {
	case 1, 2, 4, 8:
	default:
		panic(fmt.Sprintf("isa: invalid memory access size %d", size))
	}
}

// Ld encodes rd <- zeroext(mem[rb+disp], size).
func (a *Asm) Ld(rd, rb Reg, size int, disp int32) {
	checkSize(size)
	a.op(LD)
	a.b(byte(rd))
	a.b(byte(rb))
	a.b(byte(size))
	a.i32(disp)
}

// Lds encodes rd <- signext(mem[rb+disp], size).
func (a *Asm) Lds(rd, rb Reg, size int, disp int32) {
	checkSize(size)
	a.op(LDS)
	a.b(byte(rd))
	a.b(byte(rb))
	a.b(byte(size))
	a.i32(disp)
}

// St encodes mem[rb+disp] <- low size bytes of rs.
func (a *Asm) St(rb, rs Reg, size int, disp int32) {
	checkSize(size)
	a.op(ST)
	a.b(byte(rb))
	a.b(byte(rs))
	a.b(byte(size))
	a.i32(disp)
}

// Lea encodes rd <- rb + disp.
func (a *Asm) Lea(rd, rb Reg, disp int32) {
	a.op(LEA)
	a.b(byte(rd))
	a.b(byte(rb))
	a.i32(disp)
}

// Alu encodes a two-register ALU operation (ADD..NOT).
func (a *Asm) Alu(op Op, rd, rs Reg) {
	switch op {
	case ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR, SAR, UDIV, UMOD:
		a.op(op)
		a.b(byte(rd))
		a.b(byte(rs))
	case NEG, NOT:
		a.op(op)
		a.b(byte(rd))
	default:
		panic(fmt.Sprintf("isa: %v is not an ALU op", op))
	}
}

// AluI encodes a register-immediate ALU operation (ADDI..SARI).
func (a *Asm) AluI(op Op, rd Reg, imm int32) {
	switch op {
	case ADDI, SUBI, MULI, DIVI, MODI, ANDI, ORI, XORI, SHLI, SHRI, SARI:
		a.op(op)
		a.b(byte(rd))
		a.i32(imm)
	default:
		panic(fmt.Sprintf("isa: %v is not an immediate ALU op", op))
	}
}

// SetCC encodes rd <- 1 if the condition holds for the last CMP, else 0.
func (a *Asm) SetCC(rd Reg, cc Cond) { a.op(SETCC); a.b(byte(rd)); a.b(byte(cc)) }

// Cmp encodes compare rs1, rs2.
func (a *Asm) Cmp(rs1, rs2 Reg) { a.op(CMP); a.b(byte(rs1)); a.b(byte(rs2)) }

// CmpI encodes compare rs, imm.
func (a *Asm) CmpI(rs Reg, imm int32) { a.op(CMPI); a.b(byte(rs)); a.i32(imm) }

// Jcc encodes a conditional jump with the given displacement relative
// to the end of the instruction.
func (a *Asm) Jcc(cc Cond, rel int32) { a.op(JCC); a.b(byte(cc)); a.i32(rel) }

// Jmp encodes an unconditional jump with the given displacement
// relative to the end of the instruction.
func (a *Asm) Jmp(rel int32) { a.op(JMP); a.i32(rel) }

// Call encodes a direct call with the given displacement relative to
// the end of the instruction. The encoding is exactly CallSiteLen bytes.
func (a *Asm) Call(rel int32) { a.op(CALL); a.i32(rel) }

// CallR encodes an indirect call through rs, padded to CallSiteLen
// bytes so the site can later be patched into a direct call.
func (a *Asm) CallR(rs Reg) { a.op(CLLR); a.b(byte(rs)); a.b(0); a.b(0); a.b(0) }

// CallM encodes a call through the 64-bit function pointer stored at
// the absolute address. The encoding is exactly MemCallSiteLen bytes.
func (a *Asm) CallM(addr uint64) { a.op(CLLM); a.i64(int64(addr)) }

// Ret encodes RET.
func (a *Asm) Ret() { a.op(RET) }

// Push encodes PUSH rs.
func (a *Asm) Push(rs Reg) { a.op(PUSH); a.b(byte(rs)) }

// Pop encodes POP rd.
func (a *Asm) Pop(rd Reg) { a.op(POP); a.b(byte(rd)) }

// SpAdd encodes sp += imm.
func (a *Asm) SpAdd(imm int32) { a.op(SPAD); a.i32(imm) }

// Xchg encodes an atomic 64-bit swap of mem[rb] and rs.
func (a *Asm) Xchg(rb, rs Reg) { a.op(XCHG); a.b(byte(rb)); a.b(byte(rs)) }

// Pause encodes PAUSE.
func (a *Asm) Pause() { a.op(PAUSE) }

// Cli encodes CLI.
func (a *Asm) Cli() { a.op(CLI) }

// Sti encodes STI.
func (a *Asm) Sti() { a.op(STI) }

// Hcall encodes a hypercall with the given number.
func (a *Asm) Hcall(n uint8) { a.op(HCALL); a.b(n) }

// Rdtsc encodes rd <- cycle counter.
func (a *Asm) Rdtsc(rd Reg) { a.op(RDTSC); a.b(byte(rd)) }

// OutB encodes a byte write of rs to the given device port.
func (a *Asm) OutB(port uint8, rs Reg) { a.op(OUTB); a.b(port); a.b(byte(rs)) }

// InB encodes a byte read from the given device port into rd.
func (a *Asm) InB(rd Reg, port uint8) { a.op(INB); a.b(byte(rd)); a.b(port) }

// EncodeCall returns the CallSiteLen-byte encoding of a direct call
// with displacement rel (relative to the end of the instruction).
// The runtime library uses it to patch call sites in place.
func EncodeCall(rel int32) [CallSiteLen]byte {
	var out [CallSiteLen]byte
	out[0] = byte(CALL)
	binary.LittleEndian.PutUint32(out[1:], uint32(rel))
	return out
}

// EncodeJmp returns the 5-byte encoding of a direct jump with
// displacement rel. The runtime library overwrites generic function
// prologues with it.
func EncodeJmp(rel int32) [5]byte {
	var out [5]byte
	out[0] = byte(JMP)
	binary.LittleEndian.PutUint32(out[1:], uint32(rel))
	return out
}

// EncodeNop returns an n-byte no-op suitable for erasing an n-byte
// code region in place.
func EncodeNop(n int) []byte {
	var a Asm
	a.Nop(n)
	return a.Bytes()
}

// CallRel computes the rel32 displacement that makes a call or jump at
// address siteAddr (pointing at the opcode byte) reach target. The
// displacement is relative to the end of the 5-byte instruction.
func CallRel(siteAddr, target uint64) (int32, error) {
	d := int64(target) - (int64(siteAddr) + CallSiteLen)
	if d != int64(int32(d)) {
		return 0, fmt.Errorf("isa: displacement %#x out of rel32 range", d)
	}
	return int32(d), nil
}
