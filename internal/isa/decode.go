package isa

import (
	"encoding/binary"
	"fmt"
)

// Inst is a decoded m64 instruction.
type Inst struct {
	Op   Op
	Len  int   // encoded length in bytes
	Rd   Reg   // destination / first register operand
	Rs   Reg   // source / second register operand
	Cond Cond  // for JCC
	Size int   // for LD/LDS/ST
	Imm  int64 // immediate / displacement / port number
}

// ErrTruncated is returned when the byte stream ends inside an
// instruction.
var ErrTruncated = fmt.Errorf("isa: truncated instruction")

// Decode decodes a single instruction from the start of code.
func Decode(code []byte) (Inst, error) {
	if len(code) == 0 {
		return Inst{}, ErrTruncated
	}
	op := Op(code[0])

	need := func(n int) error {
		if len(code) < n {
			return ErrTruncated
		}
		return nil
	}
	reg := func(i int) (Reg, error) {
		r := Reg(code[i])
		if r >= NumRegs {
			return 0, fmt.Errorf("isa: invalid register %d in %v", r, op)
		}
		return r, nil
	}
	imm32 := func(i int) int64 {
		return int64(int32(binary.LittleEndian.Uint32(code[i:])))
	}

	switch op {
	case HLT, NOP, BRK, RET, PAUSE, CLI, STI:
		return Inst{Op: op, Len: 1}, nil

	case NOPN:
		if err := need(2); err != nil {
			return Inst{}, err
		}
		n := int(code[1])
		if n < 2 {
			return Inst{}, fmt.Errorf("isa: NOPN length %d < 2", n)
		}
		if err := need(n); err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, Len: n}, nil

	case MOVI:
		if err := need(10); err != nil {
			return Inst{}, err
		}
		rd, err := reg(1)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, Len: 10, Rd: rd, Imm: int64(binary.LittleEndian.Uint64(code[2:]))}, nil

	case MOV, CMP, XCHG,
		ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR, SAR, UDIV, UMOD:
		if err := need(3); err != nil {
			return Inst{}, err
		}
		rd, err := reg(1)
		if err != nil {
			return Inst{}, err
		}
		rs, err := reg(2)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, Len: 3, Rd: rd, Rs: rs}, nil

	case NEG, NOT:
		if err := need(2); err != nil {
			return Inst{}, err
		}
		rd, err := reg(1)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, Len: 2, Rd: rd}, nil

	case LD, LDS, ST:
		if err := need(8); err != nil {
			return Inst{}, err
		}
		r1, err := reg(1)
		if err != nil {
			return Inst{}, err
		}
		r2, err := reg(2)
		if err != nil {
			return Inst{}, err
		}
		size := int(code[3])
		switch size {
		case 1, 2, 4, 8:
		default:
			return Inst{}, fmt.Errorf("isa: invalid access size %d in %v", size, op)
		}
		// For LD/LDS: r1 = rd, r2 = rb. For ST: r1 = rb, r2 = rs.
		return Inst{Op: op, Len: 8, Rd: r1, Rs: r2, Size: size, Imm: imm32(4)}, nil

	case LEA:
		if err := need(7); err != nil {
			return Inst{}, err
		}
		rd, err := reg(1)
		if err != nil {
			return Inst{}, err
		}
		rb, err := reg(2)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, Len: 7, Rd: rd, Rs: rb, Imm: imm32(3)}, nil

	case ADDI, SUBI, MULI, DIVI, MODI, ANDI, ORI, XORI, SHLI, SHRI, SARI, CMPI:
		if err := need(6); err != nil {
			return Inst{}, err
		}
		rd, err := reg(1)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, Len: 6, Rd: rd, Imm: imm32(2)}, nil

	case SETCC:
		if err := need(3); err != nil {
			return Inst{}, err
		}
		rd, err := reg(1)
		if err != nil {
			return Inst{}, err
		}
		cc := Cond(code[2])
		if cc >= NumConds {
			return Inst{}, fmt.Errorf("isa: invalid condition %d", cc)
		}
		return Inst{Op: op, Len: 3, Rd: rd, Cond: cc}, nil

	case JCC:
		if err := need(6); err != nil {
			return Inst{}, err
		}
		cc := Cond(code[1])
		if cc >= NumConds {
			return Inst{}, fmt.Errorf("isa: invalid condition %d", cc)
		}
		return Inst{Op: op, Len: 6, Cond: cc, Imm: imm32(2)}, nil

	case JMP, CALL:
		if err := need(5); err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, Len: 5, Imm: imm32(1)}, nil

	case CLLM:
		if err := need(9); err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, Len: 9, Imm: int64(binary.LittleEndian.Uint64(code[1:]))}, nil

	case CLLR:
		if err := need(5); err != nil {
			return Inst{}, err
		}
		rs, err := reg(1)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, Len: 5, Rs: rs}, nil

	case PUSH, POP, RDTSC:
		if err := need(2); err != nil {
			return Inst{}, err
		}
		r, err := reg(1)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, Len: 2, Rd: r}, nil

	case SPAD:
		if err := need(5); err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, Len: 5, Imm: imm32(1)}, nil

	case HCALL:
		if err := need(2); err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, Len: 2, Imm: int64(code[1])}, nil

	case OUTB:
		if err := need(3); err != nil {
			return Inst{}, err
		}
		rs, err := reg(2)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, Len: 3, Rs: rs, Imm: int64(code[1])}, nil

	case INB:
		if err := need(3); err != nil {
			return Inst{}, err
		}
		rd, err := reg(1)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, Len: 3, Rd: rd, Imm: int64(code[2])}, nil
	}
	return Inst{}, fmt.Errorf("isa: unknown opcode %#02x", code[0])
}
