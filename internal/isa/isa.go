// Package isa defines m64, the byte-encoded 64-bit instruction set used
// by the multiverse reproduction.
//
// m64 is deliberately x86-like in the properties that matter to the
// paper: instructions are variable length, a direct CALL occupies
// exactly 5 bytes (opcode + rel32), and an indirect CALLR is padded to
// the same 5 bytes so that every call site is a uniform patch unit.
// Multi-byte NOPs of any length exist so that a patched-out call site
// can be erased in place.
package isa

import "fmt"

// NumRegs is the number of general-purpose registers. Register 15 is
// the stack pointer by software convention (PUSH/POP update it).
const NumRegs = 16

// SP is the register used as the stack pointer.
const SP = 15

// Reg identifies a general-purpose register.
type Reg uint8

// String returns the assembler name of the register.
func (r Reg) String() string {
	if r == SP {
		return "sp"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Op is an m64 opcode.
type Op uint8

// Opcode space. Gaps are reserved.
const (
	HLT  Op = 0x00 // halt the CPU
	NOP  Op = 0x01 // 1-byte no-op
	NOPN Op = 0x02 // multi-byte no-op: [op][len8][pad...], total length len8
	BRK  Op = 0x03 // 1-byte breakpoint trap — the int3 of m64

	MOVI Op = 0x10 // rd <- imm64
	MOV  Op = 0x11 // rd <- rs
	LD   Op = 0x12 // rd <- zeroext(mem[rb+disp32], size8)
	LDS  Op = 0x13 // rd <- signext(mem[rb+disp32], size8)
	ST   Op = 0x14 // mem[rb+disp32] <- low size8 bytes of rs
	LEA  Op = 0x15 // rd <- rb + disp32

	ADD  Op = 0x20 // rd += rs
	SUB  Op = 0x21
	MUL  Op = 0x22
	DIV  Op = 0x23 // signed; divide by zero faults
	MOD  Op = 0x24 // signed remainder
	AND  Op = 0x25
	OR   Op = 0x26
	XOR  Op = 0x27
	SHL  Op = 0x28
	SHR  Op = 0x29 // logical
	SAR  Op = 0x2A // arithmetic
	NEG  Op = 0x2B // rd = -rd
	NOT  Op = 0x2C // rd = ^rd
	UDIV Op = 0x2D // unsigned divide; divide by zero faults
	UMOD Op = 0x2E // unsigned remainder

	ADDI Op = 0x30 // rd += signext(imm32)
	SUBI Op = 0x31
	MULI Op = 0x32
	DIVI Op = 0x33
	MODI Op = 0x34
	ANDI Op = 0x35
	ORI  Op = 0x36
	XORI Op = 0x37
	SHLI Op = 0x38
	SHRI Op = 0x39
	SARI Op = 0x3A

	CMP   Op = 0x40 // compare rs1, rs2; sets condition state
	CMPI  Op = 0x41 // compare rs, signext(imm32)
	SETCC Op = 0x42 // [op][rd][cc8]: rd <- 1 if condition holds else 0

	JCC  Op = 0x48 // [op][cc8][rel32]; jump relative to end of insn
	JMP  Op = 0x4F // [op][rel32]
	CALL Op = 0x50 // [op][rel32]; 5 bytes — the patch unit
	CLLR Op = 0x51 // [op][reg][pad][pad][pad]; 5 bytes — patchable indirect call
	CLLM Op = 0x56 // [op][abs64]; 9 bytes — call through a pointer in memory
	RET  Op = 0x52
	PUSH Op = 0x53 // sp -= 8; mem[sp] = rs
	POP  Op = 0x54 // rd = mem[sp]; sp += 8
	SPAD Op = 0x55 // sp += signext(imm32)

	XCHG  Op = 0x60 // atomically swap 64-bit mem[rb] and rs
	PAUSE Op = 0x62 // spin-loop hint
	CLI   Op = 0x63 // disable interrupts (privileged)
	STI   Op = 0x64 // enable interrupts (privileged)
	HCALL Op = 0x65 // [op][imm8]: hypercall
	RDTSC Op = 0x66 // rd <- cycle counter
	OUTB  Op = 0x67 // [op][port8][rs]: write low byte of rs to device port
	INB   Op = 0x68 // [op][rd][port8]: read byte from device port
)

// Cond is a condition code for JCC. Comparisons are evaluated against
// the operands of the most recent CMP/CMPI.
type Cond uint8

const (
	EQ Cond = iota
	NE
	LT // signed
	LE
	GT
	GE
	B // unsigned below
	BE
	A // unsigned above
	AE
	NumConds
)

// Neg returns the logically negated condition.
func (c Cond) Neg() Cond {
	switch c {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	case B:
		return AE
	case BE:
		return A
	case A:
		return BE
	case AE:
		return B
	}
	panic(fmt.Sprintf("isa: invalid condition %d", c))
}

// Swap returns the condition that holds for (b, a) when c holds for
// (a, b); used when canonicalizing compare operand order.
func (c Cond) Swap() Cond {
	switch c {
	case EQ, NE:
		return c
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	case B:
		return A
	case BE:
		return AE
	case A:
		return B
	case AE:
		return BE
	}
	panic(fmt.Sprintf("isa: invalid condition %d", c))
}

var condNames = [NumConds]string{"eq", "ne", "lt", "le", "gt", "ge", "b", "be", "a", "ae"}

// String returns the assembler suffix of the condition.
func (c Cond) String() string {
	if c < NumConds {
		return condNames[c]
	}
	return fmt.Sprintf("cc%d", uint8(c))
}

// Eval reports whether the condition holds for signed operands a, b
// (unsigned conditions reinterpret the bits).
func (c Cond) Eval(a, b int64) bool {
	ua, ub := uint64(a), uint64(b)
	switch c {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	case GE:
		return a >= b
	case B:
		return ua < ub
	case BE:
		return ua <= ub
	case A:
		return ua > ub
	case AE:
		return ua >= ub
	}
	panic(fmt.Sprintf("isa: invalid condition %d", c))
}

// CallSiteLen is the byte length of a patchable direct call site
// (direct CALL and padded indirect CALLR). It mirrors the 5-byte far
// call of IA-32 that the paper's inlining optimization keys on.
const CallSiteLen = 5

// MemCallSiteLen is the byte length of a memory-indirect call site
// (CLLM), the form emitted for multiverse function-pointer switches —
// the analogue of the kernel's patchable "call *pv_ops.field" sites.
const MemCallSiteLen = 9

var opNames = map[Op]string{
	HLT: "hlt", NOP: "nop", NOPN: "nopn", BRK: "brk",
	MOVI: "movi", MOV: "mov", LD: "ld", LDS: "lds", ST: "st", LEA: "lea",
	ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", MOD: "mod",
	AND: "and", OR: "or", XOR: "xor", SHL: "shl", SHR: "shr", SAR: "sar",
	NEG: "neg", NOT: "not", UDIV: "udiv", UMOD: "umod",
	ADDI: "addi", SUBI: "subi", MULI: "muli", DIVI: "divi", MODI: "modi",
	ANDI: "andi", ORI: "ori", XORI: "xori", SHLI: "shli", SHRI: "shri", SARI: "sari",
	CMP: "cmp", CMPI: "cmpi", SETCC: "set",
	JCC: "j", JMP: "jmp", CALL: "call", CLLR: "callr", CLLM: "callm", RET: "ret",
	PUSH: "push", POP: "pop", SPAD: "spadd",
	XCHG: "xchg", PAUSE: "pause", CLI: "cli", STI: "sti",
	HCALL: "hcall", RDTSC: "rdtsc", OUTB: "outb", INB: "inb",
}

// String returns the assembler mnemonic of the opcode.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op%#02x", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool {
	_, ok := opNames[o]
	return ok
}
