package pysim

import (
	"testing"
)

func build(t *testing.T, b Build, gc bool) *Python {
	t.Helper()
	p, err := BuildPython(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetGCEnabled(gc); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAllocatorReturnsDistinctAlignedObjects(t *testing.T) {
	p := build(t, Plain, false)
	mach := p.System().Machine
	a, err := mach.CallNamed("py_gc_alloc", 24)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mach.CallNamed("py_gc_alloc", 24)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("allocations alias")
	}
	if a%32 != 0 || b%32 != 0 {
		t.Errorf("objects not 32-byte aligned: %#x %#x", a, b)
	}
}

func TestGCRunsWhenEnabled(t *testing.T) {
	p := build(t, Plain, true)
	if _, err := p.System().Machine.CallNamed("bench_alloc", 1500); err != nil {
		t.Fatal(err)
	}
	n, err := p.Collections()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("gc enabled but no collections ran")
	}

	off := build(t, Plain, false)
	if _, err := off.System().Machine.CallNamed("bench_alloc", 1500); err != nil {
		t.Fatal(err)
	}
	n, err = off.Collections()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("gc disabled but %d collections ran", n)
	}
}

func TestMultiverseGCDisabledRemovesBookkeeping(t *testing.T) {
	// The committed gc_enabled=0 variant must skip the counter
	// entirely, and behaviour must match the dynamic build.
	mv := build(t, Multiverse, false)
	if _, err := mv.System().Machine.CallNamed("bench_alloc", 1500); err != nil {
		t.Fatal(err)
	}
	n, err := mv.Collections()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("committed gc-off variant ran %d collections", n)
	}
	cnt, err := mv.System().Machine.ReadGlobal("gc_count", 8)
	if err != nil {
		t.Fatal(err)
	}
	if cnt != 0 {
		t.Errorf("gc_count = %d, bookkeeping not specialized away", cnt)
	}
}

func TestMultiverseGCEnabledStillCollects(t *testing.T) {
	mv := build(t, Multiverse, true)
	if _, err := mv.System().Machine.CallNamed("bench_alloc", 1500); err != nil {
		t.Fatal(err)
	}
	n, err := mv.Collections()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("committed gc-on variant never collected")
	}
}

func TestAllocationPathEffectIsSmall(t *testing.T) {
	// The paper could not measure a significant effect on cPython; in
	// the deterministic simulator a small effect is visible, but it
	// must stay single-digit-ish relative to the whole allocation path
	// (the gc check is a minor fraction of _PyObject_GC_Alloc).
	plain := build(t, Plain, false)
	mv := build(t, Multiverse, false)
	pr, err := plain.Measure(8, 200)
	if err != nil {
		t.Fatal(err)
	}
	vr, err := mv.Measure(8, 200)
	if err != nil {
		t.Fatal(err)
	}
	if vr.Mean >= pr.Mean {
		t.Errorf("no effect at all: plain %.1f, mv %.1f", pr.Mean, vr.Mean)
	}
	reduction := (pr.Mean - vr.Mean) / pr.Mean * 100
	if reduction > 40 {
		t.Errorf("allocation-path effect implausibly large: %.1f%%", reduction)
	}
}
