// Package pysim reproduces the cPython case study (§6.2.1): the
// garbage collector's boolean enable flag is only written through
// gc.enable()/gc.disable() and influences the object-allocation path
// (_PyObject_GC_Alloc), making it a multiverse candidate. The paper
// could not obtain stable measurements for this workload; the
// deterministic simulator does, so the harness reports the measured
// effect alongside that caveat.
package pysim

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
)

// Build selects plain (dynamic gc check) or multiversed cPython.
type Build int

// The two interpreter builds.
const (
	Plain Build = iota
	Multiverse
)

func (b Build) String() string {
	if b == Multiverse {
		return "w/ Multiverse"
	}
	return "w/o Multiverse"
}

func pySource(b Build) string {
	attr := ""
	if b == Multiverse {
		attr = "multiverse "
	}
	return fmt.Sprintf(`
	%[1]sint gc_enabled;
	char arena[262144];
	ulong arena_off;
	long gc_count;
	long gc_threshold = 700;
	long collections;

	// gc_collect models a generation-0 collection: walk the young
	// objects and reset the counter.
	void gc_collect(void) {
		long live = 0;
		for (ulong i = 0; i < arena_off; i += 32) {
			ulong* hdr = (ulong*)(arena + i);
			if (*hdr) { live++; }
		}
		collections++;
		gc_count = 0;
	}

	// py_gc_alloc is _PyObject_GC_Alloc: allocate an object and do the
	// GC bookkeeping when the collector is enabled.
	%[1]schar* py_gc_alloc(ulong size) {
		ulong need = (size + 31) & ~(ulong)31;
		if (arena_off + need > 262144) {
			arena_off = 0; // wrap: the benchmark reuses the arena
		}
		char* obj = arena + arena_off;
		arena_off += need;
		ulong* hdr = (ulong*)obj;
		*hdr = 1;
		if (gc_enabled) {
			gc_count++;
			if (gc_count > gc_threshold) {
				gc_collect();
			}
		}
		return obj;
	}

	ulong bench_baseline(ulong iters) {
		ulong t0 = __rdtsc();
		for (ulong i = 0; i < iters; i++) { }
		ulong t1 = __rdtsc();
		return t1 - t0;
	}
	ulong bench_alloc(ulong iters) {
		ulong t0 = __rdtsc();
		for (ulong i = 0; i < iters; i++) { py_gc_alloc(24); }
		ulong t1 = __rdtsc();
		return t1 - t0;
	}
	`, attr)
}

// Python is one built interpreter.
type Python struct {
	Build Build
	sys   *core.System
}

// BuildPython compiles one flavor.
func BuildPython(b Build) (*Python, error) {
	sys, err := core.BuildSystem(core.GenOptions{}, nil,
		core.Source{Name: "cpython", Text: pySource(b)})
	if err != nil {
		return nil, err
	}
	return &Python{Build: b, sys: sys}, nil
}

// System exposes the underlying system.
func (p *Python) System() *core.System { return p.sys }

// SetGCEnabled models gc.enable()/gc.disable(); the multiversed build
// commits after the API call.
func (p *Python) SetGCEnabled(on bool) error {
	v := uint64(0)
	if on {
		v = 1
	}
	if p.Build == Plain {
		return p.sys.Machine.WriteGlobal("gc_enabled", 4, v)
	}
	if err := p.sys.SetSwitch("gc_enabled", int64(v)); err != nil {
		return err
	}
	_, err := p.sys.RT.Commit()
	return err
}

// Collections reports how many gen-0 collections ran.
func (p *Python) Collections() (uint64, error) {
	return p.sys.Machine.ReadGlobal("collections", 8)
}

// Measure returns cycles per object allocation.
func (p *Python) Measure(samples int, iters uint64) (bench.Result, error) {
	one := func() (float64, error) {
		total, err := p.sys.Machine.CallNamed("bench_alloc", iters)
		if err != nil {
			return 0, err
		}
		base, err := p.sys.Machine.CallNamed("bench_baseline", iters)
		if err != nil {
			return 0, err
		}
		if total < base {
			return 0, nil
		}
		return float64(total-base) / float64(iters), nil
	}
	for i := 0; i < 2; i++ {
		if _, err := one(); err != nil {
			return bench.Result{}, err
		}
	}
	var firstErr error
	res := bench.Measure(samples, func() float64 {
		v, err := one()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	})
	return res, firstErr
}
