package difftest

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/kernelsim"
	"repro/internal/metrics"
	"repro/internal/muslsim"
)

// The metrics registry is strictly passive: every CPU/mem/runtime
// counter is read through closures at scrape time, commit latency is
// modeled (never charged to any CPU clock), and residency bookkeeping
// runs only on the cold commit path. Attaching a registry must
// therefore not change a single simulated cycle. These tests run the
// E1 (Figure 1 spinlock) and E4 (musl libc) workloads end to end with
// and without a registry and require the bench.Result structs to be
// bit-identical.

// withMetrics runs f with BuildSystem's default metrics registry set
// to a fresh registry (or left unset), restoring afterwards.
func withMetrics(t *testing.T, on bool, f func()) *metrics.Registry {
	t.Helper()
	var reg *metrics.Registry
	if on {
		reg = metrics.New()
		core.SetDefaultMetricsRegistry(reg)
		defer core.SetDefaultMetricsRegistry(nil)
	}
	f()
	return reg
}

func TestMetricsInvarianceFig1(t *testing.T) {
	opts := kernelsim.MeasureOpts{Samples: 10, Iters: 30, Warmup: 2}
	measure := func(on bool) (map[string]bench.Result, *metrics.Registry) {
		out := make(map[string]bench.Result)
		reg := withMetrics(t, on, func() {
			for _, b := range []kernelsim.Fig1Binding{
				kernelsim.Fig1Static, kernelsim.Fig1Dynamic, kernelsim.Fig1Multiverse,
			} {
				for _, smp := range []bool{false, true} {
					sys, err := kernelsim.BuildFig1(b, smp)
					if err != nil {
						t.Fatalf("BuildFig1(%v, %v): %v", b, smp, err)
					}
					r, err := sys.Measure(opts)
					if err != nil {
						t.Fatalf("Measure(%v, %v): %v", b, smp, err)
					}
					out[b.String()+map[bool]string{false: "/up", true: "/smp"}[smp]] = r
				}
			}
		})
		return out, reg
	}
	observed, reg := measure(true)
	plain, _ := measure(false)
	for k, r := range observed {
		if r != plain[k] {
			t.Errorf("%s: results differ with metrics on/off:\nobserved: %+v\nplain:    %+v",
				k, r, plain[k])
		}
	}
	// The registry really was attached and aggregated the runs.
	if got := reg.CounterTotal("mv_instructions_total"); got == 0 {
		t.Error("registry attached but mv_instructions_total is zero — invariance vacuous")
	}
}

func TestMetricsInvarianceMusl(t *testing.T) {
	const samples, iters = 8, 20
	measure := func(on bool) (map[string]bench.Result, *metrics.Registry) {
		out := make(map[string]bench.Result)
		reg := withMetrics(t, on, func() {
			for _, build := range []muslsim.Build{muslsim.Plain, muslsim.Multiverse} {
				m, err := muslsim.BuildMusl(build)
				if err != nil {
					t.Fatalf("BuildMusl(%v): %v", build, err)
				}
				if err := m.SetThreads(false); err != nil {
					t.Fatal(err)
				}
				for _, f := range muslsim.Funcs() {
					r, err := m.Measure(f, samples, iters)
					if err != nil {
						t.Fatalf("Measure(%v): %v", f, err)
					}
					out[build.String()+"/"+f.String()] = r
				}
			}
		})
		return out, reg
	}
	observed, reg := measure(true)
	plain, _ := measure(false)
	for k, r := range observed {
		if r != plain[k] {
			t.Errorf("%s: results differ with metrics on/off:\nobserved: %+v\nplain:    %+v",
				k, r, plain[k])
		}
	}
	if got := reg.CounterTotal("mv_instructions_total"); got == 0 {
		t.Error("registry attached but mv_instructions_total is zero — invariance vacuous")
	}
}
