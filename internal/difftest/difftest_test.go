// Package difftest cross-checks the whole pipeline (parser, checker,
// optimizer, code generator, linker, CPU) against independent oracles:
//
//   - random expression trees are compiled to MVC and evaluated on the
//     simulated machine, then compared against a Go-side evaluator
//     implementing the same semantics;
//   - the multiverse soundness property of §7.4: for every switch
//     assignment, committed execution computes the same results as
//     dynamic execution;
//   - optimizer soundness: compiling with and without the optimization
//     passes yields behaviorally identical programs.
package difftest

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
)

// ---- random expression generation ----

// expr is a tiny AST mirrored in both MVC source and Go evaluation.
type expr interface {
	src() string
	eval(env map[string]int64) int64
}

type lit struct{ v int64 }

func (l lit) src() string                 { return fmt.Sprintf("%d", l.v) }
func (l lit) eval(map[string]int64) int64 { return l.v }

type ref struct{ name string }

func (r ref) src() string                     { return r.name }
func (r ref) eval(env map[string]int64) int64 { return env[r.name] }

type unary struct {
	op string
	x  expr
}

func (u unary) src() string { return "(" + u.op + " " + u.x.src() + ")" }
func (u unary) eval(env map[string]int64) int64 {
	v := u.x.eval(env)
	switch u.op {
	case "-":
		return -v
	case "~":
		return ^v
	case "!":
		if v == 0 {
			return 1
		}
		return 0
	}
	panic(u.op)
}

type binary struct {
	op   string
	x, y expr
}

func (b binary) src() string { return "(" + b.x.src() + " " + b.op + " " + b.y.src() + ")" }
func (b binary) eval(env map[string]int64) int64 {
	x := b.x.eval(env)
	y := b.y.eval(env)
	boolToInt := func(v bool) int64 {
		if v {
			return 1
		}
		return 0
	}
	switch b.op {
	case "+":
		return x + y
	case "-":
		return x - y
	case "*":
		return x * y
	case "&":
		return x & y
	case "|":
		return x | y
	case "^":
		return x ^ y
	case "==":
		return boolToInt(x == y)
	case "!=":
		return boolToInt(x != y)
	case "<":
		return boolToInt(x < y)
	case "<=":
		return boolToInt(x <= y)
	case ">":
		return boolToInt(x > y)
	case ">=":
		return boolToInt(x >= y)
	case "&&":
		return boolToInt(x != 0 && y != 0)
	case "||":
		return boolToInt(x != 0 || y != 0)
	}
	panic(b.op)
}

type shift struct {
	op string
	x  expr
	k  int64 // constant shift amount 0..63
}

func (s shift) src() string { return fmt.Sprintf("(%s %s %d)", s.x.src(), s.op, s.k) }
func (s shift) eval(env map[string]int64) int64 {
	x := s.x.eval(env)
	if s.op == "<<" {
		return x << uint(s.k)
	}
	return x >> uint(s.k) // long >> is arithmetic
}

type ternary struct{ c, t, f expr }

func (t ternary) src() string {
	return "(" + t.c.src() + " ? " + t.t.src() + " : " + t.f.src() + ")"
}
func (t ternary) eval(env map[string]int64) int64 {
	if t.c.eval(env) != 0 {
		return t.t.eval(env)
	}
	return t.f.eval(env)
}

// safeDiv guards division by zero like C code would: y == 0 ? x : x/y.
type safeDiv struct {
	op   string // "/" or "%"
	x, y expr
}

func (d safeDiv) src() string {
	return fmt.Sprintf("((%s) == 0 ? (%s) : (%s) %s (%s))",
		d.y.src(), d.x.src(), d.x.src(), d.op, d.y.src())
}
func (d safeDiv) eval(env map[string]int64) int64 {
	y := d.y.eval(env)
	x := d.x.eval(env)
	if y == 0 {
		return x
	}
	// Mirror the simulator: INT64_MIN / -1 overflows on the host too,
	// so the generator never produces INT64_MIN literals and variables
	// are bounded; division stays in range.
	if d.op == "/" {
		return x / y
	}
	return x % y
}

var varNames = []string{"a", "b", "c"}

func genExpr(rng *rand.Rand, depth int) expr {
	if depth <= 0 {
		if rng.Intn(2) == 0 {
			return lit{rng.Int63n(2000) - 1000}
		}
		return ref{varNames[rng.Intn(len(varNames))]}
	}
	switch rng.Intn(10) {
	case 0:
		return unary{[]string{"-", "~", "!"}[rng.Intn(3)], genExpr(rng, depth-1)}
	case 1:
		return shift{[]string{"<<", ">>"}[rng.Intn(2)], genExpr(rng, depth-1), rng.Int63n(8)}
	case 2:
		return ternary{genExpr(rng, depth-1), genExpr(rng, depth-1), genExpr(rng, depth-1)}
	case 3:
		return safeDiv{[]string{"/", "%"}[rng.Intn(2)], genExpr(rng, depth-1), genExpr(rng, depth-1)}
	default:
		ops := []string{"+", "-", "*", "&", "|", "^", "==", "!=", "<", "<=", ">", ">=", "&&", "||"}
		return binary{ops[rng.Intn(len(ops))], genExpr(rng, depth-1), genExpr(rng, depth-1)}
	}
}

func TestRandomExpressionsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const perProgram = 8
	for round := 0; round < 12; round++ {
		// Batch several expressions into one program to amortize the
		// compile cost.
		exprs := make([]expr, perProgram)
		var sb strings.Builder
		for i := range exprs {
			exprs[i] = genExpr(rng, 3+rng.Intn(3))
			fmt.Fprintf(&sb, "long f%d(long a, long b, long c) { return %s; }\n", i, exprs[i].src())
		}
		sys, err := core.BuildSystem(core.GenOptions{}, nil,
			core.Source{Name: "rand", Text: sb.String()})
		if err != nil {
			t.Fatalf("round %d: %v\nsource:\n%s", round, err, sb.String())
		}
		for trial := 0; trial < 4; trial++ {
			env := map[string]int64{
				"a": rng.Int63n(100000) - 50000,
				"b": rng.Int63n(100000) - 50000,
				"c": rng.Int63n(7) - 3, // small values exercise !=0 paths
			}
			for i, e := range exprs {
				want := e.eval(env)
				got, err := sys.Machine.CallNamed(fmt.Sprintf("f%d", i),
					uint64(env["a"]), uint64(env["b"]), uint64(env["c"]))
				if err != nil {
					t.Fatalf("round %d f%d: %v\nexpr: %s", round, i, err, e.src())
				}
				if int64(got) != want {
					t.Fatalf("round %d f%d(%d,%d,%d) = %d, want %d\nexpr: %s",
						round, i, env["a"], env["b"], env["c"], int64(got), want, e.src())
				}
			}
		}
	}
}

// ---- multiverse soundness (§7.4) ----

// genSwitchBody builds a random statement tree over two switches and
// an accumulator, mirrored by a Go closure.
func genSwitchBody(rng *rand.Rand, depth int) (string, func(s1, s2, acc int64) int64) {
	if depth <= 0 || rng.Intn(3) == 0 {
		k := rng.Int63n(100) + 1
		switch rng.Intn(3) {
		case 0:
			return fmt.Sprintf("acc += %d;", k), func(_, _, acc int64) int64 { return acc + k }
		case 1:
			return fmt.Sprintf("acc ^= %d;", k), func(_, _, acc int64) int64 { return acc ^ k }
		default:
			return fmt.Sprintf("acc = acc * 3 + %d;", k), func(_, _, acc int64) int64 { return acc*3 + k }
		}
	}
	sw := rng.Intn(2)
	swName := []string{"s1", "s2"}[sw]
	if rng.Intn(4) == 0 {
		// A C switch over the configuration variable, one arm per
		// domain value plus default (break-terminated, no fallthrough
		// so the Go mirror stays simple).
		arms := make([]func(s1, s2, acc int64) int64, 3)
		var sb strings.Builder
		fmt.Fprintf(&sb, "switch (%s) { ", swName)
		for v := 0; v < 2; v++ {
			armSrc, armGo := genSwitchBody(rng, depth-1)
			arms[v] = armGo
			fmt.Fprintf(&sb, "case %d: %s break; ", v, armSrc)
		}
		defSrc, defGo := genSwitchBody(rng, depth-1)
		arms[2] = defGo
		fmt.Fprintf(&sb, "default: %s }", defSrc)
		return sb.String(), func(s1, s2, acc int64) int64 {
			v := []int64{s1, s2}[sw]
			if v == 0 || v == 1 {
				return arms[v](s1, s2, acc)
			}
			return arms[2](s1, s2, acc)
		}
	}
	cmpVal := rng.Int63n(3)
	op := []string{"==", "!=", ">"}[rng.Intn(3)]
	thenSrc, thenGo := genSwitchBody(rng, depth-1)
	elseSrc, elseGo := genSwitchBody(rng, depth-1)
	src := fmt.Sprintf("if (%s %s %d) { %s } else { %s }", swName, op, cmpVal, thenSrc, elseSrc)
	return src, func(s1, s2, acc int64) int64 {
		v := []int64{s1, s2}[sw]
		var taken bool
		switch op {
		case "==":
			taken = v == cmpVal
		case "!=":
			taken = v != cmpVal
		case ">":
			taken = v > cmpVal
		}
		if taken {
			return thenGo(s1, s2, acc)
		}
		return elseGo(s1, s2, acc)
	}
}

func TestCommittedEqualsDynamicProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 8; round++ {
		bodySrc, bodyGo := genSwitchBody(rng, 3)
		src := fmt.Sprintf(`
			multiverse(0, 1, 2) int s1;
			multiverse(0, 1, 2) int s2;
			long acc;
			multiverse void step(void) { %s }
			void run(void) { step(); }
			long get(void) { return acc; }
			void reset(void) { acc = 0; }
		`, strings.ReplaceAll(bodySrc, "acc", "acc"))
		sys, err := core.BuildSystem(core.GenOptions{}, nil,
			core.Source{Name: "prop", Text: src})
		if err != nil {
			t.Fatalf("round %d: %v\n%s", round, err, src)
		}
		for s1 := int64(0); s1 <= 2; s1++ {
			for s2 := int64(0); s2 <= 2; s2++ {
				want := bodyGo(s1, s2, 0)
				for _, committed := range []bool{false, true} {
					if err := sys.SetSwitch("s1", s1); err != nil {
						t.Fatal(err)
					}
					if err := sys.SetSwitch("s2", s2); err != nil {
						t.Fatal(err)
					}
					if committed {
						if _, err := sys.RT.Commit(); err != nil {
							t.Fatal(err)
						}
					} else if err := sys.RT.Revert(); err != nil {
						t.Fatal(err)
					}
					if _, err := sys.Machine.CallNamed("reset"); err != nil {
						t.Fatal(err)
					}
					if _, err := sys.Machine.CallNamed("run"); err != nil {
						t.Fatal(err)
					}
					got, err := sys.Machine.CallNamed("get")
					if err != nil {
						t.Fatal(err)
					}
					if int64(got) != want {
						t.Fatalf("round %d s1=%d s2=%d committed=%v: got %d, want %d\nbody: %s",
							round, s1, s2, committed, int64(got), want, bodySrc)
					}
				}
			}
		}
	}
}

// ---- optimizer soundness ----

func TestOptimizerPreservesBehavior(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 6; round++ {
		bodySrc, _ := genSwitchBody(rng, 4)
		src := fmt.Sprintf(`
			multiverse int s1;
			multiverse int s2;
			long acc;
			multiverse void step(void) { %s }
			void run(void) { step(); }
			long get(void) { return acc; }
			void reset(void) { acc = 0; }
		`, bodySrc)
		build := func(disable bool) *core.System {
			sys, err := core.BuildSystem(core.GenOptions{DisableOptimizer: disable}, nil,
				core.Source{Name: "opt", Text: src})
			if err != nil {
				t.Fatalf("round %d (disable=%v): %v", round, disable, err)
			}
			return sys
		}
		optimized := build(false)
		plain := build(true)
		for s1 := int64(0); s1 <= 1; s1++ {
			for s2 := int64(0); s2 <= 1; s2++ {
				results := make([]int64, 2)
				for i, sys := range []*core.System{optimized, plain} {
					if err := sys.SetSwitch("s1", s1); err != nil {
						t.Fatal(err)
					}
					if err := sys.SetSwitch("s2", s2); err != nil {
						t.Fatal(err)
					}
					if _, err := sys.RT.Commit(); err != nil {
						t.Fatal(err)
					}
					if _, err := sys.Machine.CallNamed("reset"); err != nil {
						t.Fatal(err)
					}
					if _, err := sys.Machine.CallNamed("run"); err != nil {
						t.Fatal(err)
					}
					got, err := sys.Machine.CallNamed("get")
					if err != nil {
						t.Fatal(err)
					}
					results[i] = int64(got)
				}
				if results[0] != results[1] {
					t.Fatalf("round %d s1=%d s2=%d: optimized %d != unoptimized %d\nbody: %s",
						round, s1, s2, results[0], results[1], bodySrc)
				}
			}
		}
	}
}

// ---- unsigned differential check ----

func TestUnsignedExpressionsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	cases := []struct {
		src  string
		eval func(a, b uint64) uint64
	}{
		{"a / (b | 1)", func(a, b uint64) uint64 { return a / (b | 1) }},
		{"a % (b | 1)", func(a, b uint64) uint64 { return a % (b | 1) }},
		{"a >> 7", func(a, b uint64) uint64 { return a >> 7 }},
		{"(a > b)", func(a, b uint64) uint64 {
			if a > b {
				return 1
			}
			return 0
		}},
		{"(a <= b)", func(a, b uint64) uint64 {
			if a <= b {
				return 1
			}
			return 0
		}},
		{"a * b + (a ^ b)", func(a, b uint64) uint64 { return a*b + (a ^ b) }},
	}
	var sb strings.Builder
	for i, c := range cases {
		fmt.Fprintf(&sb, "ulong g%d(ulong a, ulong b) { return %s; }\n", i, c.src)
	}
	sys, err := core.BuildSystem(core.GenOptions{}, nil,
		core.Source{Name: "unsigned", Text: sb.String()})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		a, b := rng.Uint64(), rng.Uint64()
		for i, c := range cases {
			got, err := sys.Machine.CallNamed(fmt.Sprintf("g%d", i), a, b)
			if err != nil {
				t.Fatal(err)
			}
			if want := c.eval(a, b); got != want {
				t.Fatalf("g%d(%#x, %#x) = %#x, want %#x (%s)", i, a, b, got, want, c.src)
			}
		}
	}
}

// ---- pretty-printer round trip on random programs ----

func TestPrintedProgramsBehaveIdentically(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const perProgram = 6
	for round := 0; round < 6; round++ {
		exprs := make([]expr, perProgram)
		var sb strings.Builder
		for i := range exprs {
			exprs[i] = genExpr(rng, 3)
			fmt.Fprintf(&sb, "long f%d(long a, long b, long c) { return %s; }\n", i, exprs[i].src())
		}
		src := sb.String()
		u, err := cc.Parse("orig.mvc", src)
		if err != nil {
			t.Fatal(err)
		}
		if err := cc.Check(u); err != nil {
			t.Fatal(err)
		}
		// Re-render every function and build the printed program.
		var printed strings.Builder
		for i := 0; i < perProgram; i++ {
			printed.WriteString(cc.FormatFunc(u.Globals[fmt.Sprintf("f%d", i)].Func))
			printed.WriteString("\n")
		}
		sysA, err := core.BuildSystem(core.GenOptions{}, nil,
			core.Source{Name: "orig", Text: src})
		if err != nil {
			t.Fatal(err)
		}
		sysB, err := core.BuildSystem(core.GenOptions{}, nil,
			core.Source{Name: "printed", Text: printed.String()})
		if err != nil {
			t.Fatalf("printed program does not compile: %v\n%s", err, printed.String())
		}
		for trial := 0; trial < 3; trial++ {
			a := uint64(rng.Int63n(100000))
			b := uint64(rng.Int63n(100000))
			c := uint64(rng.Int63n(7))
			for i := 0; i < perProgram; i++ {
				name := fmt.Sprintf("f%d", i)
				ra, err := sysA.Machine.CallNamed(name, a, b, c)
				if err != nil {
					t.Fatal(err)
				}
				rb, err := sysB.Machine.CallNamed(name, a, b, c)
				if err != nil {
					t.Fatal(err)
				}
				if ra != rb {
					t.Fatalf("round %d %s(%d,%d,%d): original %d != printed %d\nexpr: %s",
						round, name, a, b, c, int64(ra), int64(rb), exprs[i].src())
				}
			}
		}
	}
}
