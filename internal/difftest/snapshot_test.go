package difftest

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/kernelsim"
	"repro/internal/link"
	"repro/internal/machine"
	"repro/internal/muslsim"
	"repro/internal/snapshot"
)

// Checkpoint/restore must be invisible: pausing a run at an arbitrary
// cycle threshold to capture a snapshot, and separately restoring that
// snapshot onto a fresh machine and running to completion, must both
// retire bit-identical simulated cycles, statistics, state reports,
// console output and final-state digests as the uninterrupted run.
// These difftests pin that over the paper's E1 (Figure 1 spinlock) and
// E4 (musl) workloads, with superblocks on and off.

// runOutcome is everything observable about a finished run.
type runOutcome struct {
	ret     uint64
	cycles  uint64
	stats   cpu.Stats
	report  string
	console string
	digest  string
}

// snapSystem builds a machine+runtime pair manually from a shared
// image, so every run in a comparison carries identical (absent)
// observability attachments.
func snapSystem(t *testing.T, img *link.Image) *core.System {
	t.Helper()
	m, err := machine.New(img)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewRuntime(img, &core.UserPlatform{M: m})
	if err != nil {
		t.Fatal(err)
	}
	return &core.System{Machine: m, RT: rt}
}

// finish runs the CPU to the halt stub and collects the outcome,
// including the digest of the machine's final state.
func finish(t *testing.T, sys *core.System) runOutcome {
	t.Helper()
	c := sys.Machine.CPU
	if _, err := c.Run(sys.Machine.MaxSteps); err != nil {
		t.Fatal(err)
	}
	if !c.Halted() {
		t.Fatal("run did not halt")
	}
	snap, err := snapshot.Capture(sys.Machine, sys.RT)
	if err != nil {
		t.Fatal(err)
	}
	digest, err := snapshot.Digest(snap.Encode())
	if err != nil {
		t.Fatal(err)
	}
	return runOutcome{
		ret:     c.Reg(0),
		cycles:  c.Cycles(),
		stats:   sys.Machine.TotalStats(),
		report:  sys.RT.StateReport(),
		console: string(sys.Machine.Console()),
		digest:  digest,
	}
}

// checkRestoreInvariance drives three runs of entry(args) over img:
//
//	A — uninterrupted (the reference),
//	B — paused mid-call at cycle C by RunUntil, snapshotted, continued,
//	C — a fresh machine restored from B's snapshot and run to the end,
//
// and requires all three outcomes bit-identical.
func checkRestoreInvariance(t *testing.T, img *link.Image, configure func(*core.System), entry string, args ...uint64) {
	t.Helper()

	sysA := snapSystem(t, img)
	configure(sysA)
	if err := sysA.Machine.StartCall(sysA.Machine.CPU, entry, args...); err != nil {
		t.Fatal(err)
	}
	a := finish(t, sysA)

	sysB := snapSystem(t, img)
	configure(sysB)
	if err := sysB.Machine.StartCall(sysB.Machine.CPU, entry, args...); err != nil {
		t.Fatal(err)
	}
	midC := a.cycles / 2
	if _, err := sysB.Machine.CPU.RunUntil(midC, sysB.Machine.MaxSteps); err != nil {
		t.Fatal(err)
	}
	if sysB.Machine.CPU.Halted() {
		t.Fatalf("run finished before the checkpoint cycle %d — raise the iteration count", midC)
	}
	snap, err := snapshot.Capture(sysB.Machine, sysB.RT)
	if err != nil {
		t.Fatal(err)
	}
	enc := snap.Encode()
	b := finish(t, sysB)
	if a != b {
		t.Fatalf("pausing to snapshot perturbed the run:\nuninterrupted %+v\npaused        %+v", a, b)
	}

	restored, err := snapshot.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	sysC := snapSystem(t, img) // pristine: Apply replaces memory, CPUs and bindings
	if err := snapshot.Apply(restored, sysC.Machine, sysC.RT); err != nil {
		t.Fatal(err)
	}
	if got := sysC.Machine.CPU.Cycles(); got != midC && got < midC {
		t.Fatalf("restored machine starts at cycle %d, snapshot taken at >= %d", got, midC)
	}
	c := finish(t, sysC)
	if a != c {
		t.Fatalf("restore-then-run diverged from the uninterrupted run:\nuninterrupted %+v\nrestored      %+v", a, c)
	}
}

func TestSnapshotRestoreInvarianceFig1(t *testing.T) {
	for _, sb := range []bool{false, true} {
		withSuperblocks(t, sb, func() {
			f, err := kernelsim.BuildFig1(kernelsim.Fig1Multiverse, true)
			if err != nil {
				t.Fatal(err)
			}
			img := f.System().Machine.Image
			configure := func(sys *core.System) {
				if err := sys.SetSwitch("config_smp", 1); err != nil {
					t.Fatal(err)
				}
				if _, err := sys.RT.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			checkRestoreInvariance(t, img, configure, "bench_fig1", 400)
		})
	}
}

func TestSnapshotRestoreInvarianceMusl(t *testing.T) {
	for _, sb := range []bool{false, true} {
		withSuperblocks(t, sb, func() {
			ml, err := muslsim.BuildMusl(muslsim.Multiverse)
			if err != nil {
				t.Fatal(err)
			}
			img := ml.System().Machine.Image
			configure := func(sys *core.System) {
				if err := sys.SetSwitch("threads_minus_1", 0); err != nil {
					t.Fatal(err)
				}
				if _, err := sys.RT.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			checkRestoreInvariance(t, img, configure, "bench_fputc", 300)
		})
	}
}
