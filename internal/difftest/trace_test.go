package difftest

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/kernelsim"
	"repro/internal/muslsim"
	"repro/internal/trace"
)

// Tracing is strictly passive: attaching a collector (with profiling,
// so every hook on the interpreter hot path fires) must not change a
// single simulated cycle. These tests run the E1 (Figure 1 spinlock)
// and E4 (musl libc) workloads end to end with and without a tracer
// and require the bench.Result structs to be bit-identical.

// withTracer runs f with BuildSystem's default trace collector set to
// a fresh profiling collector (or left unset), restoring afterwards.
func withTracer(t *testing.T, on bool, f func()) {
	t.Helper()
	if on {
		core.SetDefaultTraceCollector(trace.NewCollector(trace.Options{Profile: true}))
		defer core.SetDefaultTraceCollector(nil)
	}
	f()
}

func TestTracerInvarianceFig1(t *testing.T) {
	opts := kernelsim.MeasureOpts{Samples: 10, Iters: 30, Warmup: 2}
	measure := func(on bool) map[string]bench.Result {
		out := make(map[string]bench.Result)
		withTracer(t, on, func() {
			for _, b := range []kernelsim.Fig1Binding{
				kernelsim.Fig1Static, kernelsim.Fig1Dynamic, kernelsim.Fig1Multiverse,
			} {
				for _, smp := range []bool{false, true} {
					sys, err := kernelsim.BuildFig1(b, smp)
					if err != nil {
						t.Fatalf("BuildFig1(%v, %v): %v", b, smp, err)
					}
					r, err := sys.Measure(opts)
					if err != nil {
						t.Fatalf("Measure(%v, %v): %v", b, smp, err)
					}
					out[b.String()+map[bool]string{false: "/up", true: "/smp"}[smp]] = r
				}
			}
		})
		return out
	}
	traced := measure(true)
	plain := measure(false)
	for k, r := range traced {
		if r != plain[k] {
			t.Errorf("%s: results differ with tracer on/off:\ntraced: %+v\nplain:  %+v",
				k, r, plain[k])
		}
	}
}

func TestTracerInvarianceMusl(t *testing.T) {
	const samples, iters = 8, 20
	measure := func(on bool) map[string]bench.Result {
		out := make(map[string]bench.Result)
		withTracer(t, on, func() {
			for _, build := range []muslsim.Build{muslsim.Plain, muslsim.Multiverse} {
				m, err := muslsim.BuildMusl(build)
				if err != nil {
					t.Fatalf("BuildMusl(%v): %v", build, err)
				}
				if err := m.SetThreads(false); err != nil {
					t.Fatal(err)
				}
				for _, f := range muslsim.Funcs() {
					r, err := m.Measure(f, samples, iters)
					if err != nil {
						t.Fatalf("Measure(%v): %v", f, err)
					}
					out[build.String()+"/"+f.String()] = r
				}
			}
		})
		return out
	}
	traced := measure(true)
	plain := measure(false)
	for k, r := range traced {
		if r != plain[k] {
			t.Errorf("%s: results differ with tracer on/off:\ntraced: %+v\nplain:  %+v",
				k, r, plain[k])
		}
	}
}
