package difftest

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/cpu"
	"repro/internal/kernelsim"
	"repro/internal/muslsim"
)

// The superblock threaded-dispatch layer is, like the decode cache, a
// pure host-side accelerator: chaining straight-line instructions into
// blocks and dispatching them through the per-op function table must
// never change a single simulated cycle, across block boundaries,
// terminators, interrupt-perturbation epilogues and the SMP paths the
// E1/E4 workloads exercise (commits, icache flushes, BRK text pokes).
// These tests run both workloads end to end with superblocks on and
// off and require the bench.Result structs — mean, std, min, max,
// sample and drop counts — to be bit-identical.

// withSuperblocks runs f with the package-wide superblock default
// forced on or off, restoring the previous default afterwards.
func withSuperblocks(t *testing.T, on bool, f func()) {
	t.Helper()
	orig := cpu.SuperblocksDefault()
	cpu.SetSuperblocksDefault(on)
	defer cpu.SetSuperblocksDefault(orig)
	f()
}

func TestSuperblockInvarianceFig1(t *testing.T) {
	opts := kernelsim.MeasureOpts{Samples: 10, Iters: 30, Warmup: 2}
	measure := func(on bool) map[string]bench.Result {
		out := make(map[string]bench.Result)
		withSuperblocks(t, on, func() {
			for _, b := range []kernelsim.Fig1Binding{
				kernelsim.Fig1Static, kernelsim.Fig1Dynamic, kernelsim.Fig1Multiverse,
			} {
				for _, smp := range []bool{false, true} {
					sys, err := kernelsim.BuildFig1(b, smp)
					if err != nil {
						t.Fatalf("BuildFig1(%v, %v): %v", b, smp, err)
					}
					r, err := sys.Measure(opts)
					if err != nil {
						t.Fatalf("Measure(%v, %v): %v", b, smp, err)
					}
					out[b.String()+map[bool]string{false: "/up", true: "/smp"}[smp]] = r
				}
			}
		})
		return out
	}
	on := measure(true)
	off := measure(false)
	for k, r := range on {
		if r != off[k] {
			t.Errorf("%s: results differ with superblocks on/off:\non:  %+v\noff: %+v",
				k, r, off[k])
		}
	}
}

func TestSuperblockInvarianceMusl(t *testing.T) {
	const samples, iters = 8, 20
	measure := func(on bool) map[string]bench.Result {
		out := make(map[string]bench.Result)
		withSuperblocks(t, on, func() {
			for _, build := range []muslsim.Build{muslsim.Plain, muslsim.Multiverse} {
				m, err := muslsim.BuildMusl(build)
				if err != nil {
					t.Fatalf("BuildMusl(%v): %v", build, err)
				}
				if err := m.SetThreads(false); err != nil {
					t.Fatal(err)
				}
				for _, f := range muslsim.Funcs() {
					r, err := m.Measure(f, samples, iters)
					if err != nil {
						t.Fatalf("Measure(%v): %v", f, err)
					}
					out[build.String()+"/"+f.String()] = r
				}
			}
		})
		return out
	}
	on := measure(true)
	off := measure(false)
	for k, r := range on {
		if r != off[k] {
			t.Errorf("%s: results differ with superblocks on/off:\non:  %+v\noff: %+v",
				k, r, off[k])
		}
	}
}

// TestSuperblockArchStatsInvariance pins the architectural statistics
// — instruction, branch, load/store, mispredict, interrupt and trap
// counts — bit-identical with superblocks on and off on the E1
// workload. Host-side accelerator stats (Decode*, Block*) legitimately
// differ between the two dispatch strategies and are zeroed before
// comparison.
func TestSuperblockArchStatsInvariance(t *testing.T) {
	stats := func(on bool) (out cpu.Stats) {
		withSuperblocks(t, on, func() {
			sys, err := kernelsim.BuildFig1(kernelsim.Fig1Multiverse, true)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Measure(kernelsim.MeasureOpts{Samples: 5, Iters: 20, Warmup: 1}); err != nil {
				t.Fatal(err)
			}
			out = sys.System().Machine.TotalStats()
		})
		return out
	}
	on := stats(true)
	off := stats(false)
	for _, s := range []*cpu.Stats{&on, &off} {
		s.DecodeHits, s.DecodeMisses = 0, 0
		s.BlockBuilds, s.BlockHits, s.BlockInsts, s.BlockInvalidates = 0, 0, 0, 0
	}
	if on != off {
		t.Errorf("architectural stats differ with superblocks on/off:\non:  %+v\noff: %+v", on, off)
	}
}
