package difftest

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/kernelsim"
	"repro/internal/muslsim"
)

// ActiveOSR is a commit-time policy: when no function is active at
// commit time, the OSR machinery must never run and must never cost a
// simulated cycle. These tests run the E1 (spinlock kernel) and E4
// (musl libc) workloads with their commits issued under
// OnActive: ActiveOSR versus ActiveRefuse — the two policies differ
// only in what happens to an active function, and the CPUs are halted
// at every commit, so every bench.Result must be bit-identical. The
// cross with superblocks on/off guards the interaction between the
// dispatch accelerator and the OSR-instrumented commit path.

// osrPolicies are the two arms under comparison.
var osrPolicies = []struct {
	name string
	p    core.OnActivePolicy
}{
	{"refuse", core.ActiveRefuse},
	{"osr", core.ActiveOSR},
}

// requireUntriggered asserts that an ActiveOSR-configured runtime
// never exercised the OSR path: no transfers, no fallbacks, no
// deferrals. If this fires, the workload has an active frame at
// commit time and the parity comparison proves nothing.
func requireUntriggered(t *testing.T, rt *core.Runtime, what string) {
	t.Helper()
	s := rt.Stats
	if s.OSRTransfers != 0 || s.OSRFallbacks != 0 || s.DeferredPatches != 0 {
		t.Fatalf("%s: OSR triggered (transfers=%d fallbacks=%d deferred=%d); workload no longer commits quiescent",
			what, s.OSRTransfers, s.OSRFallbacks, s.DeferredPatches)
	}
}

func measureSpinE1(t *testing.T, p core.OnActivePolicy, check bool) map[string]bench.Result {
	t.Helper()
	opts := kernelsim.MeasureOpts{Samples: 10, Iters: 30, Warmup: 2}
	out := make(map[string]bench.Result)
	s, err := kernelsim.BuildSpin(kernelsim.SpinMultiverse)
	if err != nil {
		t.Fatal(err)
	}
	s.Runtime().SetCommitOptions(core.CommitOptions{Mode: core.ModeStopMachine, OnActive: p})
	for _, smp := range []bool{false, true} {
		if err := s.SetSMP(smp); err != nil {
			t.Fatalf("SetSMP(%v): %v", smp, err)
		}
		r, err := s.Measure(opts)
		if err != nil {
			t.Fatalf("Measure(smp=%v): %v", smp, err)
		}
		out[map[bool]string{false: "up", true: "smp"}[smp]] = r
	}
	if check {
		requireUntriggered(t, s.Runtime(), "e1")
	}
	return out
}

func measureMuslE4(t *testing.T, p core.OnActivePolicy, check bool) map[string]bench.Result {
	t.Helper()
	const samples, iters = 8, 20
	out := make(map[string]bench.Result)
	m, err := muslsim.BuildMusl(muslsim.Multiverse)
	if err != nil {
		t.Fatal(err)
	}
	m.System().RT.SetCommitOptions(core.CommitOptions{Mode: core.ModeStopMachine, OnActive: p})
	for _, multi := range []bool{false, true} {
		if err := m.SetThreads(multi); err != nil {
			t.Fatalf("SetThreads(%v): %v", multi, err)
		}
		for _, f := range muslsim.Funcs() {
			r, err := m.Measure(f, samples, iters)
			if err != nil {
				t.Fatalf("Measure(%v): %v", f, err)
			}
			out[map[bool]string{false: "st", true: "mt"}[multi]+"/"+f.String()] = r
		}
	}
	if check {
		requireUntriggered(t, m.System().RT, "e4")
	}
	return out
}

func comparePolicies(t *testing.T, measure func(*testing.T, core.OnActivePolicy, bool) map[string]bench.Result) {
	t.Helper()
	for _, on := range []bool{true, false} {
		var got map[string]map[string]bench.Result
		withSuperblocks(t, on, func() {
			got = map[string]map[string]bench.Result{}
			for _, arm := range osrPolicies {
				got[arm.name] = measure(t, arm.p, arm.p == core.ActiveOSR)
			}
		})
		ref, osr := got["refuse"], got["osr"]
		if len(ref) == 0 || len(ref) != len(osr) {
			t.Fatalf("superblocks=%v: measured %d/%d cells", on, len(ref), len(osr))
		}
		for k, r := range ref {
			if r != osr[k] {
				t.Errorf("superblocks=%v %s: cycles differ with OSR configured:\nrefuse: %+v\nosr:    %+v",
					on, k, r, osr[k])
			}
		}
	}
}

func TestOSRConfiguredParityE1(t *testing.T) {
	comparePolicies(t, measureSpinE1)
}

func TestOSRConfiguredParityE4(t *testing.T) {
	comparePolicies(t, measureMuslE4)
}
