package difftest

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/kernelsim"
	"repro/internal/muslsim"
	"repro/internal/trace"
)

// The always-on flight recorder must be exactly as passive as the
// opt-in tracer: it rides the runtime-library and memory hooks, never
// a CPU hook, so the unobserved superblock interpreter path stays
// taken and not one simulated cycle moves. These tests mirror the
// tracer-invariance difftests with the recorder (and a watchdog over
// the default rules) attached versus nothing attached.

// withRecorder runs f with BuildSystem's default flight recorder set
// to a fresh recorder (or left unset), restoring afterwards.
func withRecorder(t *testing.T, on bool, f func()) {
	t.Helper()
	if on {
		core.SetDefaultFlightRecorder(trace.NewRecorder(0))
		defer core.SetDefaultFlightRecorder(nil)
	}
	f()
}

func TestFlightRecorderInvarianceFig1(t *testing.T) {
	opts := kernelsim.MeasureOpts{Samples: 10, Iters: 30, Warmup: 2}
	measure := func(on bool) map[string]bench.Result {
		out := make(map[string]bench.Result)
		withRecorder(t, on, func() {
			for _, b := range []kernelsim.Fig1Binding{
				kernelsim.Fig1Static, kernelsim.Fig1Dynamic, kernelsim.Fig1Multiverse,
			} {
				for _, smp := range []bool{false, true} {
					sys, err := kernelsim.BuildFig1(b, smp)
					if err != nil {
						t.Fatalf("BuildFig1(%v, %v): %v", b, smp, err)
					}
					r, err := sys.Measure(opts)
					if err != nil {
						t.Fatalf("Measure(%v, %v): %v", b, smp, err)
					}
					out[b.String()+map[bool]string{false: "/up", true: "/smp"}[smp]] = r
				}
			}
		})
		return out
	}
	recorded := measure(true)
	plain := measure(false)
	for k, r := range recorded {
		if r != plain[k] {
			t.Errorf("%s: results differ with flight recorder attached/detached:\nrecorded: %+v\nplain:    %+v",
				k, r, plain[k])
		}
	}
}

func TestFlightRecorderInvarianceMusl(t *testing.T) {
	const samples, iters = 8, 20
	measure := func(on bool) map[string]bench.Result {
		out := make(map[string]bench.Result)
		withRecorder(t, on, func() {
			for _, build := range []muslsim.Build{muslsim.Plain, muslsim.Multiverse} {
				m, err := muslsim.BuildMusl(build)
				if err != nil {
					t.Fatalf("BuildMusl(%v): %v", build, err)
				}
				if err := m.SetThreads(false); err != nil {
					t.Fatal(err)
				}
				for _, f := range muslsim.Funcs() {
					r, err := m.Measure(f, samples, iters)
					if err != nil {
						t.Fatalf("Measure(%v): %v", f, err)
					}
					out[build.String()+"/"+f.String()] = r
				}
			}
		})
		return out
	}
	recorded := measure(true)
	plain := measure(false)
	for k, r := range recorded {
		if r != plain[k] {
			t.Errorf("%s: results differ with flight recorder attached/detached:\nrecorded: %+v\nplain:    %+v",
				k, r, plain[k])
		}
	}
}
