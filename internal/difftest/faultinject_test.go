package difftest

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/faultinject"
	"repro/internal/kernelsim"
	"repro/internal/muslsim"
)

// The fault injector is a host-side instrument: attaching a plan whose
// points never fire must not change a single simulated cycle. These
// tests run E1 (spinlock kernel) and E4 (mini-musl) with no injector
// and with an inert (empty) plan attached and require the
// bench.Result structs to be bit-identical. Together with the unit
// tests this pins the acceptance property that un-instrumented runs
// are unperturbed: the hooks are nil-checked on the hot paths and the
// retry/backoff machinery only advances cycles after a fault fires.

func TestFaultInjectorInvarianceSpin(t *testing.T) {
	opts := kernelsim.MeasureOpts{Samples: 10, Iters: 30, Warmup: 2}
	measure := func(attach bool) map[string]bench.Result {
		out := make(map[string]bench.Result)
		for _, smp := range []bool{false, true} {
			s, err := kernelsim.BuildSpin(kernelsim.SpinMultiverse)
			if err != nil {
				t.Fatalf("BuildSpin: %v", err)
			}
			if attach {
				faultinject.Exact().Attach(s.System().Machine)
			}
			if err := s.SetSMP(smp); err != nil {
				t.Fatalf("SetSMP(%v): %v", smp, err)
			}
			r, err := s.Measure(opts)
			if err != nil {
				t.Fatalf("Measure(smp=%v): %v", smp, err)
			}
			out[map[bool]string{false: "up", true: "smp"}[smp]] = r
		}
		return out
	}
	bare := measure(false)
	inert := measure(true)
	for k, r := range bare {
		if r != inert[k] {
			t.Errorf("%s: results differ with inert injector attached:\nbare:  %+v\ninert: %+v",
				k, r, inert[k])
		}
	}
}

func TestFaultInjectorInvarianceMusl(t *testing.T) {
	measure := func(attach bool) map[muslsim.Func]bench.Result {
		out := make(map[muslsim.Func]bench.Result)
		m, err := muslsim.BuildMusl(muslsim.Multiverse)
		if err != nil {
			t.Fatalf("BuildMusl: %v", err)
		}
		if attach {
			faultinject.Exact().Attach(m.System().Machine)
		}
		if err := m.SetThreads(false); err != nil {
			t.Fatalf("SetThreads: %v", err)
		}
		for _, f := range muslsim.Funcs() {
			r, err := m.Measure(f, 6, 40)
			if err != nil {
				t.Fatalf("Measure(%v): %v", f, err)
			}
			out[f] = r
		}
		return out
	}
	bare := measure(false)
	inert := measure(true)
	for f, r := range bare {
		if r != inert[f] {
			t.Errorf("%v: results differ with inert injector attached:\nbare:  %+v\ninert: %+v",
				f, r, inert[f])
		}
	}
}

// An exhausted plan (every point already fired) must be as invisible
// as an empty one: the firing bookkeeping lives outside the cycle
// model.
func TestExhaustedPlanIsInert(t *testing.T) {
	opts := kernelsim.MeasureOpts{Samples: 6, Iters: 20, Warmup: 1}

	s, err := kernelsim.BuildSpin(kernelsim.SpinMultiverse)
	if err != nil {
		t.Fatalf("BuildSpin: %v", err)
	}
	if err := s.SetSMP(true); err != nil {
		t.Fatalf("SetSMP(true): %v", err)
	}
	if err := s.SetSMP(false); err != nil {
		t.Fatalf("SetSMP(false): %v", err)
	}
	base, err := s.Measure(opts)
	if err != nil {
		t.Fatalf("baseline Measure: %v", err)
	}

	s2, err := kernelsim.BuildSpin(kernelsim.SpinMultiverse)
	if err != nil {
		t.Fatalf("BuildSpin: %v", err)
	}
	plan := faultinject.Exact(faultinject.Point{Kind: faultinject.KindProtect, Op: 0, Transient: true})
	plan.Attach(s2.System().Machine)
	// The transient fault fires during the first commit's first protect
	// flip and is retried transparently; the commit still succeeds and
	// the plan is spent.
	if err := s2.SetSMP(true); err != nil {
		t.Fatalf("commit with armed transient protect fault: %v", err)
	}
	if plan.Remaining() != 0 {
		t.Fatal("transient protect fault never fired")
	}
	if err := s2.SetSMP(false); err != nil {
		t.Fatalf("re-commit after exhausting the plan: %v", err)
	}
	got, err := s2.Measure(opts)
	if err != nil {
		t.Fatalf("Measure with exhausted plan: %v", err)
	}
	if got != base {
		t.Errorf("results differ with exhausted plan attached:\nbare:      %+v\nexhausted: %+v", base, got)
	}
}
