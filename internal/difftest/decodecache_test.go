package difftest

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/cpu"
	"repro/internal/kernelsim"
	"repro/internal/muslsim"
)

// The predecoded-instruction cache is a host-side accelerator: it must
// never change a single simulated cycle. These tests run the E1
// (Figure 1 spinlock) and E4 (musl libc) workloads end to end with the
// cache on and off and require the bench.Result structs — mean, std,
// min, max, sample and drop counts — to be bit-identical.

// withDecodeCache runs f with the package-wide decode-cache default
// forced to on, restoring the previous default afterwards.
func withDecodeCache(t *testing.T, on bool, f func()) {
	t.Helper()
	orig := cpu.DecodeCacheDefault()
	cpu.SetDecodeCacheDefault(on)
	defer cpu.SetDecodeCacheDefault(orig)
	f()
}

func TestDecodeCacheInvarianceFig1(t *testing.T) {
	opts := kernelsim.MeasureOpts{Samples: 10, Iters: 30, Warmup: 2}
	measure := func(on bool) map[string]bench.Result {
		out := make(map[string]bench.Result)
		withDecodeCache(t, on, func() {
			for _, b := range []kernelsim.Fig1Binding{
				kernelsim.Fig1Static, kernelsim.Fig1Dynamic, kernelsim.Fig1Multiverse,
			} {
				for _, smp := range []bool{false, true} {
					sys, err := kernelsim.BuildFig1(b, smp)
					if err != nil {
						t.Fatalf("BuildFig1(%v, %v): %v", b, smp, err)
					}
					r, err := sys.Measure(opts)
					if err != nil {
						t.Fatalf("Measure(%v, %v): %v", b, smp, err)
					}
					out[b.String()+map[bool]string{false: "/up", true: "/smp"}[smp]] = r
				}
			}
		})
		return out
	}
	on := measure(true)
	off := measure(false)
	for k, r := range on {
		if r != off[k] {
			t.Errorf("%s: results differ with decode cache on/off:\non:  %+v\noff: %+v",
				k, r, off[k])
		}
	}
}

func TestDecodeCacheInvarianceMusl(t *testing.T) {
	const samples, iters = 8, 20
	measure := func(on bool) map[string]bench.Result {
		out := make(map[string]bench.Result)
		withDecodeCache(t, on, func() {
			for _, build := range []muslsim.Build{muslsim.Plain, muslsim.Multiverse} {
				m, err := muslsim.BuildMusl(build)
				if err != nil {
					t.Fatalf("BuildMusl(%v): %v", build, err)
				}
				if err := m.SetThreads(false); err != nil {
					t.Fatal(err)
				}
				for _, f := range muslsim.Funcs() {
					r, err := m.Measure(f, samples, iters)
					if err != nil {
						t.Fatalf("Measure(%v): %v", f, err)
					}
					out[build.String()+"/"+f.String()] = r
				}
			}
		})
		return out
	}
	on := measure(true)
	off := measure(false)
	for k, r := range on {
		if r != off[k] {
			t.Errorf("%s: results differ with decode cache on/off:\non:  %+v\noff: %+v",
				k, r, off[k])
		}
	}
}
