package difftest

import (
	"testing"

	"repro/internal/fleet"
)

// TestFleetRestartConvergesToUnkilledRun is the restart-from-snapshot
// determinism oracle: a fleet where chaos power-cuts machines mid-run
// (mid-batch and mid-commit) must converge, after snapshot restores
// and round replay, to exactly the per-machine final snapshots an
// unkilled fleet produces. Byte-identical digests, not just matching
// counters — the restore path is only correct if it loses nothing and
// invents nothing.
func TestFleetRestartConvergesToUnkilledRun(t *testing.T) {
	base := fleet.Config{
		Seed: 1234, Shards: 3, Machines: 12, Rounds: 16,
	}
	run := func(chaos bool) *fleet.Result {
		cfg := base
		cfg.Chaos = chaos
		if chaos {
			cfg.KillRate = 90
		}
		fl, err := fleet.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fl.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	quiet := run(false)
	stormy := run(true)

	if stormy.Kills == 0 {
		t.Fatal("chaos run killed nothing; the oracle compared two quiet runs")
	}
	if stormy.Failed != 0 {
		t.Fatalf("chaos run lost %d machines permanently", stormy.Failed)
	}
	if len(quiet.Machines) != len(stormy.Machines) {
		t.Fatalf("machine counts differ: %d vs %d", len(quiet.Machines), len(stormy.Machines))
	}
	killed := 0
	for i, q := range quiet.Machines {
		s := stormy.Machines[i]
		if q.ID != s.ID {
			t.Fatalf("machine order differs at %d: %d vs %d", i, q.ID, s.ID)
		}
		if s.Kills > 0 {
			killed++
			if s.Restarts == 0 {
				t.Errorf("machine %d killed %d times but never restarted from snapshot", s.ID, s.Kills)
			}
		}
		if q.Digest != s.Digest {
			t.Errorf("machine %d final snapshot diverged (kills=%d restarts=%d):\nquiet:  %s\nstormy: %s",
				q.ID, s.Kills, s.Restarts, q.Digest, s.Digest)
		}
		if q.Requests != s.Requests || q.Checksum != s.Checksum {
			t.Errorf("machine %d guest state diverged: requests %d vs %d, checksum %#x vs %#x",
				q.ID, q.Requests, s.Requests, q.Checksum, s.Checksum)
		}
	}
	if killed == 0 {
		t.Fatal("no machine took a kill; raise KillRate")
	}
}
