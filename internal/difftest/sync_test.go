package difftest

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/kernelsim"
	"repro/internal/muslsim"
)

// The SMP-safety layer must be pay-for-use: on a single CPU that is
// parked at commit time, a stop-machine rendezvous herds nobody and
// the activeness scan sees no live stacks, so switching the runtime
// from the legacy parked contract to ModeStopMachine must not change
// a single simulated cycle. Likewise, attaching an inert StepHook
// must not perturb execution — the hook is a scheduler observation
// point, not a cycle consumer. These tests pin both properties on the
// paper's E1 and E4 workloads by requiring bit-identical bench
// results.

func TestStopMachineModeInvarianceSpin(t *testing.T) {
	opts := kernelsim.MeasureOpts{Samples: 10, Iters: 30, Warmup: 2}
	measure := func(stopMachine, hook bool) map[string]bench.Result {
		out := make(map[string]bench.Result)
		for _, smp := range []bool{false, true} {
			s, err := kernelsim.BuildSpin(kernelsim.SpinMultiverse)
			if err != nil {
				t.Fatalf("BuildSpin: %v", err)
			}
			if stopMachine {
				s.System().RT.SetCommitOptions(core.CommitOptions{Mode: core.ModeStopMachine})
			}
			if hook {
				s.System().Machine.StepHook = func(cpuIdx int, pc, total uint64) {}
			}
			if err := s.SetSMP(smp); err != nil {
				t.Fatalf("SetSMP(%v): %v", smp, err)
			}
			r, err := s.Measure(opts)
			if err != nil {
				t.Fatalf("Measure(smp=%v): %v", smp, err)
			}
			out[map[bool]string{false: "up", true: "smp"}[smp]] = r
		}
		return out
	}
	parked := measure(false, false)
	stop := measure(true, false)
	hooked := measure(true, true)
	for k, r := range parked {
		if r != stop[k] {
			t.Errorf("%s: results differ under ModeStopMachine:\nparked: %+v\nstop:   %+v", k, r, stop[k])
		}
		if r != hooked[k] {
			t.Errorf("%s: results differ with inert StepHook:\nparked: %+v\nhooked: %+v", k, r, hooked[k])
		}
	}
}

func TestStopMachineModeInvarianceMusl(t *testing.T) {
	measure := func(stopMachine, hook bool) map[muslsim.Func]bench.Result {
		out := make(map[muslsim.Func]bench.Result)
		m, err := muslsim.BuildMusl(muslsim.Multiverse)
		if err != nil {
			t.Fatalf("BuildMusl: %v", err)
		}
		if stopMachine {
			m.System().RT.SetCommitOptions(core.CommitOptions{Mode: core.ModeStopMachine})
		}
		if hook {
			m.System().Machine.StepHook = func(cpuIdx int, pc, total uint64) {}
		}
		if err := m.SetThreads(false); err != nil {
			t.Fatalf("SetThreads: %v", err)
		}
		for _, f := range muslsim.Funcs() {
			r, err := m.Measure(f, 6, 40)
			if err != nil {
				t.Fatalf("Measure(%v): %v", f, err)
			}
			out[f] = r
		}
		return out
	}
	parked := measure(false, false)
	stop := measure(true, false)
	hooked := measure(true, true)
	for f, r := range parked {
		if r != stop[f] {
			t.Errorf("%v: results differ under ModeStopMachine:\nparked: %+v\nstop:   %+v", f, r, stop[f])
		}
		if r != hooked[f] {
			t.Errorf("%v: results differ with inert StepHook:\nparked: %+v\nhooked: %+v", f, r, hooked[f])
		}
	}
}
