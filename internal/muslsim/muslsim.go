// Package muslsim reproduces the musl C library case study (§6.2.2,
// Figure 5): the owner-less __lock() and the stdio __lockfile() are
// extended to skip locking while only one thread runs, keyed on musl's
// existing threads_minus_1 variable. The multiversed build marks that
// variable as a configuration switch and the lock functions as
// variation points; the plain build evaluates the check dynamically on
// every invocation, like unmodified musl.
//
// Three libc functions are benchmarked exactly as in the paper:
// random(), malloc(0)/malloc(1) (the specification's special case gets
// its own column), and fputc() into a buffered FILE.
package muslsim

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
)

// Build selects the libc flavor.
type Build int

// The two builds of Figure 5.
const (
	Plain      Build = iota // unmodified musl: dynamic threads_minus_1 checks
	Multiverse              // multiversed locks, committed per thread count
)

func (b Build) String() string {
	if b == Multiverse {
		return "w/ Multiverse"
	}
	return "w/o Multiverse"
}

// muslSource builds the mini-libc. The attribute placeholder makes the
// same code compile as either flavor, mirroring how small the paper's
// musl patch is (67 lines, 10 files).
func muslSource(b Build) string {
	attr := ""
	if b == Multiverse {
		attr = "multiverse "
	}
	return fmt.Sprintf(`
	%[1]sint threads_minus_1;

	// ---- locking (musl __lock / __unlock, owner-less) ----
	%[1]svoid __lock(ulong* l) {
		if (threads_minus_1) {
			while (__xchg(l, 1)) {
				while (*l) { __pause(); }
			}
		}
	}
	%[1]svoid __unlock(ulong* l) {
		if (threads_minus_1) { *l = 0; }
	}
	// stdio FILE locking (__lockfile / __unlockfile)
	%[1]svoid __lockfile(ulong* l) {
		if (threads_minus_1) {
			while (__xchg(l, 1)) {
				while (*l) { __pause(); }
			}
		}
	}
	%[1]svoid __unlockfile(ulong* l) {
		if (threads_minus_1) { *l = 0; }
	}

	// ---- random(): musl's 64-bit LCG behind the lib lock ----
	ulong rand_state;
	ulong rand_lock;
	long random_(void) {
		__lock(&rand_lock);
		rand_state = rand_state * 6364136223846793005 + 1442695040888963407;
		long r = (long)(rand_state >> 33);
		__unlock(&rand_lock);
		return r;
	}
	void srandom_(ulong seed) { rand_state = seed; }

	// ---- malloc/free: size-class bins with a 16-byte header ----
	char heap[262144];
	ulong heap_off;
	ulong bins[16];
	ulong malloc_lock;

	char* malloc_(ulong n) {
		__lock(&malloc_lock);
		ulong sz = n;
		if (sz == 0) { sz = 1; }
		ulong c = (sz + 15) / 16;
		char* p;
		if (bins[c]) {
			p = (char*)bins[c];
			ulong* q = (ulong*)p;
			bins[c] = *q;
		} else {
			p = heap + heap_off;
			heap_off += c * 16 + 16;
		}
		ulong* hdr = (ulong*)p;
		*hdr = c;
		__unlock(&malloc_lock);
		return p + 16;
	}
	void free_(char* p) {
		if (p == (char*)0) { return; }
		char* base = p - 16;
		ulong* hdr = (ulong*)base;
		ulong c = *hdr;
		__lock(&malloc_lock);
		ulong* q = (ulong*)base;
		*q = bins[c];
		bins[c] = (ulong)base;
		__unlock(&malloc_lock);
	}

	// ---- mem helpers + calloc/realloc on top of malloc ----
	void memset_(char* p, int v, ulong n) {
		for (ulong i = 0; i < n; i++) { p[i] = (char)v; }
	}
	void memcpy_(char* d, char* s, ulong n) {
		for (ulong i = 0; i < n; i++) { d[i] = s[i]; }
	}
	char* calloc_(ulong nmemb, ulong size) {
		ulong total = nmemb * size;
		char* p = malloc_(total);
		if (p) { memset_(p, 0, total); }
		return p;
	}
	char* realloc_(char* p, ulong n) {
		if (p == (char*)0) { return malloc_(n); }
		char* base = p - 16;
		ulong* hdr = (ulong*)base;
		ulong oldc = *hdr;
		ulong want = n;
		if (want == 0) { want = 1; }
		ulong newc = (want + 15) / 16;
		if (newc <= oldc) { return p; }
		char* q = malloc_(n);
		memcpy_(q, p, oldc * 16);
		free_(p);
		return q;
	}

	// ---- fputc into a buffered FILE ----
	char fbuf[4096];
	ulong fpos;
	ulong file_lock;
	ulong flushed_bytes;
	int fputc_(int c) {
		__lockfile(&file_lock);
		fbuf[fpos] = (char)c;
		fpos++;
		if (fpos == 4096) {
			flushed_bytes += fpos;
			fpos = 0;
			__outb(2, 1); // the write(2) "syscall"
		}
		__unlockfile(&file_lock);
		return c;
	}

	// ---- benchmark loops (10 M invocations in the paper) ----
	ulong bench_baseline(ulong iters) {
		ulong t0 = __rdtsc();
		for (ulong i = 0; i < iters; i++) { }
		ulong t1 = __rdtsc();
		return t1 - t0;
	}
	ulong bench_random(ulong iters) {
		ulong t0 = __rdtsc();
		for (ulong i = 0; i < iters; i++) { random_(); }
		ulong t1 = __rdtsc();
		return t1 - t0;
	}
	ulong bench_malloc(ulong iters, ulong n) {
		ulong t0 = __rdtsc();
		for (ulong i = 0; i < iters; i++) {
			char* p = malloc_(n);
			free_(p);
		}
		ulong t1 = __rdtsc();
		return t1 - t0;
	}
	ulong bench_fputc(ulong iters) {
		ulong t0 = __rdtsc();
		for (ulong i = 0; i < iters; i++) { fputc_('a'); }
		ulong t1 = __rdtsc();
		return t1 - t0;
	}
	`, attr)
}

// Musl is one built libc.
type Musl struct {
	Build Build
	sys   *core.System
}

// BuildMusl compiles one flavor.
func BuildMusl(b Build) (*Musl, error) {
	sys, err := core.BuildSystem(core.GenOptions{}, nil,
		core.Source{Name: "musl", Text: muslSource(b)})
	if err != nil {
		return nil, err
	}
	return &Musl{Build: b, sys: sys}, nil
}

// System exposes the underlying system.
func (m *Musl) System() *core.System { return m.sys }

// SetThreads switches between the single- and multi-threaded mode
// (threads_minus_1 ∈ {0, 1}); the multiversed build commits, like the
// paper's pthread_create/exit hook calling multiverse_commit().
func (m *Musl) SetThreads(multi bool) error {
	v := uint64(0)
	if multi {
		v = 1
	}
	if m.Build == Plain {
		return m.sys.Machine.WriteGlobal("threads_minus_1", 4, v)
	}
	if err := m.sys.SetSwitch("threads_minus_1", int64(v)); err != nil {
		return err
	}
	_, err := m.sys.RT.Commit()
	return err
}

// Func identifies one benchmarked libc function.
type Func int

// The benchmarked functions of Figure 5.
const (
	FnRandom Func = iota
	FnMalloc0
	FnMalloc1
	FnFputc
)

func (f Func) String() string {
	switch f {
	case FnRandom:
		return "random()"
	case FnMalloc0:
		return "malloc(0)"
	case FnMalloc1:
		return "malloc(1)"
	case FnFputc:
		return "fputc('a')"
	}
	return "?"
}

// Funcs lists all benchmarked functions in figure order.
func Funcs() []Func { return []Func{FnRandom, FnMalloc0, FnMalloc1, FnFputc} }

// Measure returns cycles per invocation of the given function.
func (m *Musl) Measure(f Func, samples int, iters uint64) (bench.Result, error) {
	one := func() (float64, error) {
		var total, base uint64
		var err error
		switch f {
		case FnRandom:
			total, err = m.sys.Machine.CallNamed("bench_random", iters)
		case FnMalloc0:
			total, err = m.sys.Machine.CallNamed("bench_malloc", iters, 0)
		case FnMalloc1:
			total, err = m.sys.Machine.CallNamed("bench_malloc", iters, 1)
		case FnFputc:
			total, err = m.sys.Machine.CallNamed("bench_fputc", iters)
		}
		if err != nil {
			return 0, err
		}
		base, err = m.sys.Machine.CallNamed("bench_baseline", iters)
		if err != nil {
			return 0, err
		}
		if total < base {
			return 0, nil
		}
		return float64(total-base) / float64(iters), nil
	}
	// Warmup.
	for i := 0; i < 2; i++ {
		if _, err := one(); err != nil {
			return bench.Result{}, err
		}
	}
	var firstErr error
	res := bench.Measure(samples, func() float64 {
		v, err := one()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	})
	return res, firstErr
}

// CyclesToMilliseconds scales a per-op cycle count to the paper's
// metric: accumulated milliseconds for 10 million invocations on a
// 3 GHz part.
func CyclesToMilliseconds(cyclesPerOp float64) float64 {
	const invocations = 10_000_000
	const hz = 3e9
	return cyclesPerOp * invocations / hz * 1000
}

// FputcBandwidthMiBs converts a per-fputc cycle count into the paper's
// output-bandwidth metric (one byte per invocation, 3 GHz).
func FputcBandwidthMiBs(cyclesPerOp float64) float64 {
	const hz = 3e9
	bytesPerSecond := hz / cyclesPerOp
	return bytesPerSecond / (1 << 20)
}

// BranchStats returns the total branches executed by the machine so
// far; the paper attributes the musl speedup to "call-site inlining
// and the thereby reduced number of branches (−40 % for malloc(1))".
func (m *Musl) BranchStats() uint64 {
	return m.sys.Machine.CPU.Stats().Branches
}
