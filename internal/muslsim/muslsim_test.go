package muslsim

import (
	"testing"
)

func build(t *testing.T, b Build, multi bool) *Musl {
	t.Helper()
	m, err := BuildMusl(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetThreads(multi); err != nil {
		t.Fatal(err)
	}
	return m
}

func measure(t *testing.T, m *Musl, f Func) float64 {
	t.Helper()
	res, err := m.Measure(f, 10, 50)
	if err != nil {
		t.Fatalf("%v: %v", f, err)
	}
	if res.Mean <= 0 {
		t.Fatalf("%v: mean %v", f, res)
	}
	return res.Mean
}

func TestRandomIsDeterministicLCG(t *testing.T) {
	m := build(t, Plain, false)
	if _, err := m.System().Machine.CallNamed("srandom_", 42); err != nil {
		t.Fatal(err)
	}
	a, err := m.System().Machine.CallNamed("random_")
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.System().Machine.CallNamed("random_")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("random() repeated a value immediately")
	}
	// Same seed must reproduce the sequence.
	if _, err := m.System().Machine.CallNamed("srandom_", 42); err != nil {
		t.Fatal(err)
	}
	a2, err := m.System().Machine.CallNamed("random_")
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a {
		t.Errorf("seeded sequence differs: %d vs %d", a, a2)
	}
	// Reference check of the LCG step (wrapping multiply).
	var state uint64 = 42
	state = state*6364136223846793005 + 1442695040888963407
	if a != state>>33 {
		t.Errorf("random(42) = %d, want %d", a, state>>33)
	}
}

func TestMallocFreeReuse(t *testing.T) {
	m := build(t, Plain, false)
	mach := m.System().Machine
	p1, err := mach.CallNamed("malloc_", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == 0 {
		t.Fatal("malloc(1) returned NULL")
	}
	if _, err := mach.CallNamed("free_", p1); err != nil {
		t.Fatal(err)
	}
	p2, err := mach.CallNamed("malloc_", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p1 {
		t.Errorf("free list not reused: %#x then %#x", p1, p2)
	}
	// Different size classes get different chunks.
	p3, err := mach.CallNamed("malloc_", 100)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p2 {
		t.Error("distinct live allocations alias")
	}
	// Writes to one allocation must not clobber another.
	if err := mach.Mem.WriteUint(p2, 8, 0xAAAA); err != nil {
		t.Fatal(err)
	}
	if err := mach.Mem.WriteUint(p3, 8, 0xBBBB); err != nil {
		t.Fatal(err)
	}
	v, err := mach.Mem.ReadUint(p2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xAAAA {
		t.Error("allocation overlap")
	}
	if _, err := mach.CallNamed("free_", 0); err != nil {
		t.Errorf("free(NULL): %v", err)
	}
}

func TestFputcBuffersAndFlushes(t *testing.T) {
	m := build(t, Plain, false)
	mach := m.System().Machine
	for i := 0; i < 4096; i++ {
		if _, err := mach.CallNamed("fputc_", 'x'); err != nil {
			t.Fatal(err)
		}
	}
	flushed, err := mach.ReadGlobal("flushed_bytes", 8)
	if err != nil {
		t.Fatal(err)
	}
	if flushed != 4096 {
		t.Errorf("flushed = %d, want 4096", flushed)
	}
	pos, err := mach.ReadGlobal("fpos", 8)
	if err != nil {
		t.Fatal(err)
	}
	if pos != 0 {
		t.Errorf("fpos = %d after flush", pos)
	}
}

func TestFigure5SingleThreadedShape(t *testing.T) {
	plain := build(t, Plain, false)
	mv := build(t, Multiverse, false)
	for _, f := range Funcs() {
		p := measure(t, plain, f)
		v := measure(t, mv, f)
		reduction := (p - v) / p * 100
		// Paper: −43 % (random) … −54 % (malloc(1)). The shape to hold:
		// a substantial double-digit reduction for every function.
		if reduction < 20 {
			t.Errorf("%v: single-threaded reduction only %.1f%% (plain %.1f, mv %.1f)",
				f, reduction, p, v)
		}
		if reduction > 80 {
			t.Errorf("%v: implausible reduction %.1f%%", f, reduction)
		}
	}
}

func TestFigure5MultiThreadedShape(t *testing.T) {
	plain := build(t, Plain, true)
	mv := build(t, Multiverse, true)
	for _, f := range Funcs() {
		p := measure(t, plain, f)
		v := measure(t, mv, f)
		diff := (p - v) / p * 100
		// Paper: "only a minor impact on the multi-threaded scenario".
		if diff > 15 || diff < -15 {
			t.Errorf("%v: multi-threaded differs by %.1f%% (plain %.1f, mv %.1f)",
				f, diff, p, v)
		}
	}
}

func TestCommitFollowsThreadCount(t *testing.T) {
	// The paper's protocol: commit before/after the second thread is
	// spawned/has exited. Costs must track the transitions.
	mv, err := BuildMusl(Multiverse)
	if err != nil {
		t.Fatal(err)
	}
	if err := mv.SetThreads(false); err != nil {
		t.Fatal(err)
	}
	single := measure(t, mv, FnMalloc1)
	if err := mv.SetThreads(true); err != nil {
		t.Fatal(err)
	}
	multi := measure(t, mv, FnMalloc1)
	if err := mv.SetThreads(false); err != nil {
		t.Fatal(err)
	}
	single2 := measure(t, mv, FnMalloc1)
	if multi <= single {
		t.Errorf("multi-threaded (%.1f) should cost more than single (%.1f)", multi, single)
	}
	if d := single2 - single; d > 1 || d < -1 {
		t.Errorf("thread-exit commit not reversible: %.1f vs %.1f", single, single2)
	}
}

func TestMultiverseReducesBranches(t *testing.T) {
	// "The impact of multiverse stems from call-site inlining and the
	// thereby reduced number of branches (−40 % for malloc(1))."
	count := func(b Build) uint64 {
		m := build(t, b, false)
		before := m.BranchStats()
		if _, err := m.System().Machine.CallNamed("bench_malloc", 200, 1); err != nil {
			t.Fatal(err)
		}
		return m.BranchStats() - before
	}
	plain := count(Plain)
	mv := count(Multiverse)
	if mv >= plain {
		t.Errorf("branches: mv %d >= plain %d", mv, plain)
	}
	reduction := float64(plain-mv) / float64(plain) * 100
	if reduction < 15 {
		t.Errorf("branch reduction only %.1f%%", reduction)
	}
}

func TestScalingHelpers(t *testing.T) {
	ms := CyclesToMilliseconds(30)
	if ms < 99 || ms > 101 { // 30 cycles * 1e7 / 3e9 * 1e3 = 100 ms
		t.Errorf("CyclesToMilliseconds(30) = %f", ms)
	}
	bw := FputcBandwidthMiBs(12)
	if bw < 230 || bw > 250 { // 3e9/12 bytes/s ≈ 238 MiB/s
		t.Errorf("FputcBandwidthMiBs(12) = %f", bw)
	}
}

func TestLocksActuallyLockInMultiThreadedMode(t *testing.T) {
	for _, b := range []Build{Plain, Multiverse} {
		m := build(t, b, true)
		mach := m.System().Machine
		if _, err := mach.CallNamed("random_"); err != nil {
			t.Fatal(err)
		}
		// The lock word must cycle back to 0 (released).
		lw, err := mach.ReadGlobal("rand_lock", 8)
		if err != nil {
			t.Fatal(err)
		}
		if lw != 0 {
			t.Errorf("%v: rand_lock = %d after release", b, lw)
		}
	}
}

func TestCallocZeroesRecycledMemory(t *testing.T) {
	m := build(t, Plain, false)
	mach := m.System().Machine
	// Dirty a chunk, free it, calloc the same class: must read zero.
	p, err := mach.CallNamed("malloc_", 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := mach.Mem.WriteUint(p, 8, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	if _, err := mach.CallNamed("free_", p); err != nil {
		t.Fatal(err)
	}
	q, err := mach.CallNamed("calloc_", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Fatalf("calloc did not recycle the chunk (%#x vs %#x)", q, p)
	}
	v, err := mach.Mem.ReadUint(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("calloc memory = %#x, want 0", v)
	}
}

func TestReallocGrowsAndPreserves(t *testing.T) {
	m := build(t, Plain, false)
	mach := m.System().Machine
	p, err := mach.CallNamed("malloc_", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := mach.Mem.WriteUint(p, 8, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	q, err := mach.CallNamed("realloc_", p, 200)
	if err != nil {
		t.Fatal(err)
	}
	if q == p {
		t.Error("growing realloc returned the same chunk")
	}
	v, err := mach.Mem.ReadUint(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x1122334455667788 {
		t.Errorf("realloc lost data: %#x", v)
	}
	// Shrinking stays in place.
	r, err := mach.CallNamed("realloc_", q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r != q {
		t.Error("shrinking realloc moved the chunk")
	}
	// realloc(NULL, n) behaves like malloc.
	n, err := mach.CallNamed("realloc_", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("realloc(NULL) returned NULL")
	}
}

func TestMemHelpers(t *testing.T) {
	m := build(t, Plain, false)
	mach := m.System().Machine
	p, err := mach.CallNamed("malloc_", 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.CallNamed("memset_", p, 0xAB, 32); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	if err := mach.Mem.Read(p, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0xAB {
			t.Fatalf("byte %d = %#x", i, b)
		}
	}
	q, err := mach.CallNamed("malloc_", 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.CallNamed("memcpy_", q, p, 32); err != nil {
		t.Fatal(err)
	}
	buf2 := make([]byte, 32)
	if err := mach.Mem.Read(q, buf2); err != nil {
		t.Fatal(err)
	}
	for i := range buf2 {
		if buf2[i] != buf[i] {
			t.Fatalf("memcpy mismatch at %d", i)
		}
	}
}

func TestFuncLabels(t *testing.T) {
	want := map[Func]string{
		FnRandom: "random()", FnMalloc0: "malloc(0)",
		FnMalloc1: "malloc(1)", FnFputc: "fputc('a')",
	}
	for f, s := range want {
		if f.String() != s {
			t.Errorf("%v != %q", f, s)
		}
	}
	if Func(99).String() != "?" {
		t.Error("unknown func label")
	}
	if Plain.String() != "w/o Multiverse" || Multiverse.String() != "w/ Multiverse" {
		t.Error("build labels")
	}
}
