# Development targets. `make check` is the tier-1 gate: formatting,
# vet, build, tests, and a short mvbench smoke run.

GO ?= go

.PHONY: check fmt vet build test race smoke bench

check: fmt vet build test race smoke

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# A quick end-to-end run of the Figure 1 experiment, once with and once
# without the predecoded-instruction cache: the two tables must be
# identical (the cache never changes simulated cycles).
smoke:
	@$(GO) run ./cmd/mvbench -samples 20 -iters 20 fig1 > /tmp/mv-smoke-on.txt
	@$(GO) run ./cmd/mvbench -samples 20 -iters 20 -decode-cache=false fig1 > /tmp/mv-smoke-off.txt
	@if ! cmp -s /tmp/mv-smoke-on.txt /tmp/mv-smoke-off.txt; then \
		echo "mvbench fig1 differs with decode cache on/off:"; \
		diff /tmp/mv-smoke-on.txt /tmp/mv-smoke-off.txt; exit 1; fi
	@cat /tmp/mv-smoke-on.txt

bench:
	$(GO) test -bench=. -benchmem
