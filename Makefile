# Development targets. `make check` is the tier-1 gate: formatting,
# vet, build, tests, and a short mvbench smoke run.

GO ?= go

.PHONY: check fmt vet build test race smoke trace-smoke checkpoint-smoke fleet-smoke bench

check: fmt vet build test race smoke trace-smoke checkpoint-smoke fleet-smoke

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# A quick end-to-end run of the Figure 1 experiment, once with and once
# without the predecoded-instruction cache: the two tables must be
# identical (the cache never changes simulated cycles).
smoke:
	@$(GO) run ./cmd/mvbench -samples 20 -iters 20 fig1 > /tmp/mv-smoke-on.txt
	@$(GO) run ./cmd/mvbench -samples 20 -iters 20 -decode-cache=false fig1 > /tmp/mv-smoke-off.txt
	@if ! cmp -s /tmp/mv-smoke-on.txt /tmp/mv-smoke-off.txt; then \
		echo "mvbench fig1 differs with decode cache on/off:"; \
		diff /tmp/mv-smoke-on.txt /tmp/mv-smoke-off.txt; exit 1; fi
	@cat /tmp/mv-smoke-on.txt

# End-to-end observability smoke: compile a demo, run it under the
# always-on flight recorder, and render the dump with mvtrace in both
# views. Exercises the whole mvcc -> mvrun -flight -> mvtrace pipeline.
trace-smoke:
	@printf '%s\n' \
		'multiverse int feature_enabled;' \
		'long fast_calls;' \
		'void fast_path(void) { fast_calls++; }' \
		'void slow_path(void) { }' \
		'multiverse void process(void) { if (feature_enabled) { fast_path(); } else { slow_path(); } }' \
		'void handle_request(void) { process(); }' \
		> /tmp/mv-trace-smoke.mvc
	@$(GO) run ./cmd/mvcc -o /tmp/mv-trace-smoke.img /tmp/mv-trace-smoke.mvc
	@$(GO) run ./cmd/mvrun -entry handle_request -set feature_enabled=1 -commit \
		-flight /tmp/mv-trace-smoke.flight.json /tmp/mv-trace-smoke.img > /dev/null
	@$(GO) run ./cmd/mvtrace /tmp/mv-trace-smoke.flight.json > /dev/null
	@$(GO) run ./cmd/mvtrace -timeline /tmp/mv-trace-smoke.flight.json

# Snapshot/record-replay smoke: checkpoint a run mid-flight, restore
# it, and re-checkpoint the resumed run at a later cycle — the resumed
# snapshot must be byte-identical to one the uninterrupted run takes
# at the same cycle (the encoding is canonical, so cmp compares
# digests). Then drive mvdbg's time travel over the same image in
# batch mode: rewinding across a BRK-poke commit and re-running must
# land on the digest forward execution produced.
checkpoint-smoke:
	@printf '%s\n' \
		'multiverse int mode;' \
		'long work;' \
		'multiverse void step(void) { if (mode) { work += 3; } else { work += 1; } }' \
		'long spin(long n) { long i; for (i = 0; i < n; i++) { step(); } return work; }' \
		> /tmp/mv-ckpt-smoke.mvc
	@$(GO) run ./cmd/mvcc -o /tmp/mv-ckpt-smoke.img /tmp/mv-ckpt-smoke.mvc
	@$(GO) run ./cmd/mvrun -entry spin -args 400 -checkpoint 1000 \
		-checkpoint-out /tmp/mv-ckpt-mid.snap /tmp/mv-ckpt-smoke.img > /dev/null
	@$(GO) run ./cmd/mvrun -entry spin -args 400 -checkpoint 2500 \
		-checkpoint-out /tmp/mv-ckpt-full.snap /tmp/mv-ckpt-smoke.img > /dev/null
	@$(GO) run ./cmd/mvrun -restore /tmp/mv-ckpt-mid.snap -checkpoint 2500 \
		-checkpoint-out /tmp/mv-ckpt-resumed.snap /tmp/mv-ckpt-smoke.img > /dev/null
	@if ! cmp -s /tmp/mv-ckpt-full.snap /tmp/mv-ckpt-resumed.snap; then \
		echo "restore-then-run snapshot differs from the uninterrupted run's:"; \
		$(GO) run ./cmd/mvtrace -snap /tmp/mv-ckpt-full.snap; \
		$(GO) run ./cmd/mvtrace -snap /tmp/mv-ckpt-resumed.snap; exit 1; fi
	@$(GO) run ./cmd/mvtrace -snap /tmp/mv-ckpt-resumed.snap
	@printf '%s\n' \
		'call spin 400' \
		'run 2004' \
		'set mode=1' \
		'commit' \
		'run 1500' \
		'digest' \
		'back 2000' \
		'run 2000' \
		'digest' \
		'quit' \
		| $(GO) run ./cmd/mvdbg -poke -batch /tmp/mv-ckpt-smoke.img > /tmp/mv-ckpt-dbg.txt
	@if [ "$$(grep -c '^digest ' /tmp/mv-ckpt-dbg.txt)" -ne 2 ] || \
		[ "$$(grep '^digest ' /tmp/mv-ckpt-dbg.txt | sort -u | wc -l)" -ne 1 ]; then \
		echo "mvdbg time travel did not reproduce the forward digest:"; \
		cat /tmp/mv-ckpt-dbg.txt; exit 1; fi
	@grep '^digest ' /tmp/mv-ckpt-dbg.txt | head -1

# Fleet smoke: a small supervised fleet under a chaos storm — machine
# kills and commit faults during config-flip storms — must finish with
# every kill recovered by a snapshot restart and zero request loss
# (mvfleet exits non-zero otherwise), and two identically-seeded runs
# must report byte-identical JSON (host timing stripped). Leaves a
# metrics snapshot at /tmp/mv-fleet-metrics.json for CI to archive.
fleet-smoke:
	@$(GO) run ./cmd/mvfleet -shards 4 -machines 16 -rounds 12 -storm 3 \
		-chaos -kill-rate 60 -fault-points 4 -seed 7 -json \
		-metrics-out /tmp/mv-fleet-metrics.json > /tmp/mv-fleet-a.json
	@$(GO) run ./cmd/mvfleet -shards 4 -machines 16 -rounds 12 -storm 3 \
		-chaos -kill-rate 60 -fault-points 4 -seed 7 -json > /tmp/mv-fleet-b.json
	@grep -v host_seconds /tmp/mv-fleet-a.json > /tmp/mv-fleet-a.det.json
	@grep -v host_seconds /tmp/mv-fleet-b.json > /tmp/mv-fleet-b.det.json
	@if ! cmp -s /tmp/mv-fleet-a.det.json /tmp/mv-fleet-b.det.json; then \
		echo "identically-seeded fleet runs diverged:"; \
		diff /tmp/mv-fleet-a.det.json /tmp/mv-fleet-b.det.json; exit 1; fi
	@grep -E '"(kills_total|restarts_total|migrations_total|requests_served|requests_scheduled)"' /tmp/mv-fleet-a.json

bench:
	$(GO) test -bench=. -benchmem
