# Development targets. `make check` is the tier-1 gate: formatting,
# vet, build, tests, and a short mvbench smoke run.

GO ?= go

.PHONY: check fmt vet build test race smoke trace-smoke bench

check: fmt vet build test race smoke trace-smoke

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# A quick end-to-end run of the Figure 1 experiment, once with and once
# without the predecoded-instruction cache: the two tables must be
# identical (the cache never changes simulated cycles).
smoke:
	@$(GO) run ./cmd/mvbench -samples 20 -iters 20 fig1 > /tmp/mv-smoke-on.txt
	@$(GO) run ./cmd/mvbench -samples 20 -iters 20 -decode-cache=false fig1 > /tmp/mv-smoke-off.txt
	@if ! cmp -s /tmp/mv-smoke-on.txt /tmp/mv-smoke-off.txt; then \
		echo "mvbench fig1 differs with decode cache on/off:"; \
		diff /tmp/mv-smoke-on.txt /tmp/mv-smoke-off.txt; exit 1; fi
	@cat /tmp/mv-smoke-on.txt

# End-to-end observability smoke: compile a demo, run it under the
# always-on flight recorder, and render the dump with mvtrace in both
# views. Exercises the whole mvcc -> mvrun -flight -> mvtrace pipeline.
trace-smoke:
	@printf '%s\n' \
		'multiverse int feature_enabled;' \
		'long fast_calls;' \
		'void fast_path(void) { fast_calls++; }' \
		'void slow_path(void) { }' \
		'multiverse void process(void) { if (feature_enabled) { fast_path(); } else { slow_path(); } }' \
		'void handle_request(void) { process(); }' \
		> /tmp/mv-trace-smoke.mvc
	@$(GO) run ./cmd/mvcc -o /tmp/mv-trace-smoke.img /tmp/mv-trace-smoke.mvc
	@$(GO) run ./cmd/mvrun -entry handle_request -set feature_enabled=1 -commit \
		-flight /tmp/mv-trace-smoke.flight.json /tmp/mv-trace-smoke.img > /dev/null
	@$(GO) run ./cmd/mvtrace /tmp/mv-trace-smoke.flight.json > /dev/null
	@$(GO) run ./cmd/mvtrace -timeline /tmp/mv-trace-smoke.flight.json

bench:
	$(GO) test -bench=. -benchmem
