// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (see DESIGN.md §3 for the experiment index).
//
// Each benchmark drives the simulated machine and reports the
// simulated cost as the custom metric "cycles/op" — that column is the
// reproduction of the paper's numbers; the ns/op column only measures
// the host running the simulator. Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/grepsim"
	"repro/internal/isa"
	"repro/internal/kernelsim"
	"repro/internal/mem"
	"repro/internal/muslsim"
	"repro/internal/pysim"
	"repro/internal/trace"
)

func benchOpts() kernelsim.MeasureOpts {
	return kernelsim.MeasureOpts{Samples: 30, Iters: 100, Warmup: 3}
}

// reportCycles runs sample() once per b.N iteration batch and reports
// the simulated per-op cycles.
func reportCycles(b *testing.B, sample func() (float64, error)) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		v, err := sample()
		if err != nil {
			b.Fatal(err)
		}
		last = v
	}
	b.ReportMetric(last, "cycles/op")
	b.ReportMetric(0, "ns/op") // host time is not the result
}

// --- E1: Figure 1 table ---

func BenchmarkFig1(b *testing.B) {
	for _, bind := range []kernelsim.Fig1Binding{
		kernelsim.Fig1Static, kernelsim.Fig1Dynamic, kernelsim.Fig1Multiverse,
	} {
		for _, smp := range []bool{false, true} {
			name := bind.String()
			if smp {
				name += "/SMP=true"
			} else {
				name += "/SMP=false"
			}
			b.Run(name, func(b *testing.B) {
				sys, err := kernelsim.BuildFig1(bind, smp)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				reportCycles(b, func() (float64, error) {
					res, err := sys.Measure(benchOpts())
					return res.Mean, err
				})
			})
		}
	}
}

// --- E2: Figure 4 left ---

func BenchmarkFig4Spinlock(b *testing.B) {
	for _, k := range []kernelsim.SpinKernel{
		kernelsim.SpinMainline, kernelsim.SpinIf, kernelsim.SpinMultiverse, kernelsim.SpinStaticUP,
	} {
		for _, smp := range []bool{false, true} {
			if k == kernelsim.SpinStaticUP && smp {
				continue
			}
			name := k.String()
			if smp {
				name += "/Multicore"
			} else {
				name += "/Unicore"
			}
			b.Run(name, func(b *testing.B) {
				s, err := kernelsim.BuildSpin(k)
				if err != nil {
					b.Fatal(err)
				}
				if err := s.SetSMP(smp); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				reportCycles(b, func() (float64, error) {
					res, err := s.Measure(benchOpts())
					return res.Mean, err
				})
			})
		}
	}
}

// --- E3: Figure 4 right ---

func BenchmarkFig4PVOps(b *testing.B) {
	for _, k := range []kernelsim.PVKernel{
		kernelsim.PVCurrent, kernelsim.PVMultiverse, kernelsim.PVDisabled,
	} {
		for _, env := range []kernelsim.PVEnv{kernelsim.EnvNative, kernelsim.EnvXen} {
			if k == kernelsim.PVDisabled && env == kernelsim.EnvXen {
				continue
			}
			b.Run(k.String()+"/"+env.String(), func(b *testing.B) {
				p, err := kernelsim.BuildPV(k, env)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				reportCycles(b, func() (float64, error) {
					res, err := p.Measure(benchOpts())
					return res.Mean, err
				})
			})
		}
	}
}

// --- E4: Figure 5 ---

func BenchmarkFig5Musl(b *testing.B) {
	for _, build := range []muslsim.Build{muslsim.Plain, muslsim.Multiverse} {
		for _, multi := range []bool{false, true} {
			mode := "single"
			if multi {
				mode = "multi"
			}
			for _, f := range muslsim.Funcs() {
				b.Run(build.String()+"/"+mode+"/"+f.String(), func(b *testing.B) {
					m, err := muslsim.BuildMusl(build)
					if err != nil {
						b.Fatal(err)
					}
					if err := m.SetThreads(multi); err != nil {
						b.Fatal(err)
					}
					b.ResetTimer()
					reportCycles(b, func() (float64, error) {
						res, err := m.Measure(f, 20, 100)
						return res.Mean, err
					})
				})
			}
		}
	}
}

// --- Host-side interpreter throughput ---

// BenchmarkInterpreterThroughput measures how many simulated
// instructions per host second the interpreter retires on a hot loop,
// across the host-side accelerator axes: the predecoded-instruction
// cache and the superblock threaded-dispatch layer. Unlike the
// experiment benchmarks above, the ns/op column here IS the result:
// neither accelerator may change any simulated cycle (see
// internal/difftest), only the host-side insts/sec metric. The
// acceptance bar is superblocks ≥2x over the decode-cache-only
// "cached" baseline.
func BenchmarkInterpreterThroughput(b *testing.B) {
	const textBase, iters = uint64(0x400000), int32(10_000)
	program := func() []byte {
		var a isa.Asm
		a.Movi(1, 0)
		loop := a.Len()
		a.AluI(isa.ADDI, 1, 1)
		a.AluI(isa.XORI, 2, 5)
		a.Alu(isa.ADD, 3, 2)
		a.CmpI(1, iters)
		jccAt := a.Len()
		a.Jcc(isa.LT, int32(loop-(jccAt+6)))
		a.Hlt()
		return a.Bytes()
	}()
	// The tracer axis bounds the observability tax: "cached" (nil
	// tracer) vs "cached+traced" (events only) vs "cached+profiled"
	// (Step/Call/Ret feeding the cycle profiler). The nil-tracer run
	// must stay within a few percent of the pre-tracing interpreter —
	// each hook is one pointer-nil check.
	modes := []struct {
		name    string
		cached  bool
		blocks  bool
		collect func() *trace.Collector // nil = no tracer
	}{
		{"superblocks", true, true, nil},
		{"cached", true, false, nil},
		{"uncached", false, false, nil},
		{"cached+traced", true, false, func() *trace.Collector {
			return trace.NewCollector(trace.Options{})
		}},
		{"cached+profiled", true, false, func() *trace.Collector {
			return trace.NewCollector(trace.Options{Profile: true})
		}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			m := mem.New()
			if err := m.Map(textBase, mem.PageSize, mem.RWX); err != nil {
				b.Fatal(err)
			}
			if err := m.Write(textBase, program); err != nil {
				b.Fatal(err)
			}
			c := cpu.New(m, cpu.DefaultConfig())
			c.SetDecodeCache(mode.cached)
			c.SetSuperblocks(mode.blocks)
			if mode.collect != nil {
				col := mode.collect()
				col.SetSymbols(trace.NewSymTable([]trace.Sym{
					{Name: "hotloop", Addr: textBase, Size: uint64(len(program))},
				}))
				c.SetTracer(col.NewStream("cpu0", c.Cycles))
			}
			var insts uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.SetPC(textBase) // also clears the halted state
				n, err := c.Run(10_000_000)
				if err != nil {
					b.Fatal(err)
				}
				insts += n
			}
			b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "insts/sec")
		})
	}
}

// --- E5: grep end-to-end ---

func BenchmarkGrep(b *testing.B) {
	for _, build := range []grepsim.Build{grepsim.Plain, grepsim.Multiverse} {
		b.Run(build.String(), func(b *testing.B) {
			g, err := grepsim.BuildGrep(build)
			if err != nil {
				b.Fatal(err)
			}
			if err := g.SetMode(false); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			reportCycles(b, func() (float64, error) {
				res, err := g.Measure(3)
				return res.Mean, err
			})
		})
	}
}

// --- E6: cPython allocation path ---

func BenchmarkCPythonGCAlloc(b *testing.B) {
	for _, build := range []pysim.Build{pysim.Plain, pysim.Multiverse} {
		b.Run(build.String(), func(b *testing.B) {
			p, err := pysim.BuildPython(build)
			if err != nil {
				b.Fatal(err)
			}
			if err := p.SetGCEnabled(false); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			reportCycles(b, func() (float64, error) {
				res, err := p.Measure(10, 100)
				return res.Mean, err
			})
		})
	}
}

// --- E7: mass call-site patching ---

func BenchmarkCommitManyCallsites(b *testing.B) {
	sys, err := kernelsim.BuildManyCallSites(kernelsim.PaperCallSites)
	if err != nil {
		b.Fatal(err)
	}
	smp := false
	b.ResetTimer()
	var sites int
	for i := 0; i < b.N; i++ {
		smp = !smp
		rep, err := kernelsim.TimeCommit(sys, smp)
		if err != nil {
			b.Fatal(err)
		}
		sites = rep.SitesTouched
	}
	b.ReportMetric(float64(sites), "sites/commit")
}

// --- E8: BTB ablation ---

func BenchmarkAblationBTB(b *testing.B) {
	for _, bind := range []kernelsim.Fig1Binding{kernelsim.Fig1Dynamic, kernelsim.Fig1Multiverse} {
		for _, cold := range []bool{false, true} {
			name := bind.String() + "/warm"
			if cold {
				name = bind.String() + "/cold"
			}
			b.Run(name, func(b *testing.B) {
				sys, err := kernelsim.BuildFig1(bind, false)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				reportCycles(b, func() (float64, error) {
					if cold {
						res, err := sys.MeasureColdBTB(benchOpts())
						return res.Mean, err
					}
					res, err := sys.Measure(benchOpts())
					return res.Mean, err
				})
			})
		}
	}
}

// --- E9: mechanism ablation ---

func BenchmarkAblationMechanism(b *testing.B) {
	configs := []struct {
		name string
		mod  func(rt *core.Runtime)
	}{
		{"full", func(rt *core.Runtime) {}},
		{"no-inlining", func(rt *core.Runtime) { rt.DisableInlining = true }},
		{"prologue-only", func(rt *core.Runtime) { rt.PrologueOnly = true }},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			s, err := kernelsim.BuildSpin(kernelsim.SpinMultiverse)
			if err != nil {
				b.Fatal(err)
			}
			cfg.mod(s.Runtime())
			if err := s.SetSMP(false); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			reportCycles(b, func() (float64, error) {
				res, err := s.Measure(benchOpts())
				return res.Mean, err
			})
		})
	}
}

// --- E10: alternative() macros vs multiverse ---

func BenchmarkAlternativeVsMultiverse(b *testing.B) {
	for _, k := range []kernelsim.AltKernel{kernelsim.AltMacro, kernelsim.AltMultiverse} {
		for _, feature := range []bool{false, true} {
			name := k.String() + "/off"
			if feature {
				name = k.String() + "/on"
			}
			b.Run(name, func(b *testing.B) {
				a, err := kernelsim.BuildAlt(k, feature)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				reportCycles(b, func() (float64, error) {
					res, err := a.Measure(benchOpts())
					return res.Mean, err
				})
			})
		}
	}
}
